"""Chaos soak harness for the elastic fault-injected runtime.

The robustness contract of the event-driven engine + elastic membership
runtime is: **any** validated random schedule of crashes, flaps,
stragglers, clean leaves and joins either completes training or fails
with a *typed* clean error (:class:`~repro.errors.ReproError` subclass)
— it never hangs and never silently diverges.  This module soaks that
contract:

* :func:`run_chaos_case` draws a membership-aware random schedule
  (:meth:`~repro.sim.faults.FaultPlan.chaos`) for one seed and runs it
  under the invariant checker, folding the outcome — completion or
  typed failure, the replay digest, the final membership — into a
  deterministic per-seed **outcome digest**.
* :func:`run_chaos_soak` sweeps a seed set, replaying each seed
  ``replays`` times and insisting the outcome digests match across
  replays (replay determinism), then writes the per-seed recovery/epoch
  timeline as JSONL for CI artifacts.

"Never hangs" is enforced structurally, not by wall-clock watchdogs:
the simulator raises :class:`~repro.errors.SimulationError` when the
event queue drains before the run target fires (a deadlock has no
events left), and every detection/recovery path raises a
:class:`~repro.errors.ReproError` subclass.  An exception *outside*
that hierarchy is a harness bug and is allowed to propagate.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import typing as t

from repro.errors import ReproError
from repro.ioutil import atomic_write_text
from repro.models.base import ModelSpec
from repro.models.synthetic import random_model_spec
from repro.sim.faults import FaultPlan
from repro.training.resilience import run_fault_injected_training


def default_chaos_model(seed: int = 0) -> ModelSpec:
    """The small synthetic model the soak runs against."""
    return random_model_spec(seed=seed, num_layers=8,
                             total_parameters=2_000_000,
                             total_forward_flops=1e9)


@dataclasses.dataclass(frozen=True)
class ChaosOutcome:
    """Terminal state of one chaos case (one seed, one replay)."""

    seed: int
    #: ``"completed"`` or the :class:`~repro.errors.ReproError`
    #: subclass name of the typed clean failure.
    status: str
    #: Stringified error for failed cases, ``None`` when completed.
    error: str | None
    #: Number of faults the schedule drew.
    planned_faults: int
    #: Scheduled membership events (crashes + leaves + joins).
    planned_membership_events: int
    #: Event-sequence replay digest (completed cases only).
    state_digest: str | None
    final_world: int | None
    final_epoch: int | None
    epoch_transitions: int
    recoveries: int
    wasted_iterations: int | None
    total_time_s: float | None

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    def outcome_digest(self) -> str:
        """Deterministic digest of everything that must replay equal."""
        payload = json.dumps({
            "seed": self.seed,
            "status": self.status,
            "error": self.error,
            "state_digest": self.state_digest,
            "final_world": self.final_world,
            "final_epoch": self.final_epoch,
            "epoch_transitions": self.epoch_transitions,
            "recoveries": self.recoveries,
            "wasted_iterations": self.wasted_iterations,
            "total_time_s": self.total_time_s,
        }, sort_keys=True)
        return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


@dataclasses.dataclass(frozen=True)
class ChaosSoakReport:
    """Aggregate of a seed sweep (every seed replayed ``replays`` times)."""

    outcomes: tuple[ChaosOutcome, ...]
    replays: int

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.completed)

    @property
    def clean_failures(self) -> int:
        return len(self.outcomes) - self.completed

    @property
    def failure_kinds(self) -> dict[str, int]:
        kinds: dict[str, int] = {}
        for outcome in self.outcomes:
            if not outcome.completed:
                kinds[outcome.status] = kinds.get(outcome.status, 0) + 1
        return kinds


def run_chaos_case(
    seed: int,
    model: ModelSpec | None = None,
    num_gpus: int = 8,
    gpus_per_node: int = 2,
    total_iterations: int = 12,
    checkpoint_interval: int = 2,
    horizon_s: float = 2.5,
    mtbf_s: float = 0.35,
    max_extra_nodes: int = 2,
    restart_overhead_s: float = 2.0,
    max_restarts: int = 8,
    settings_cache: t.Any = None,
) -> tuple[ChaosOutcome, t.Any]:
    """Run one random schedule to its terminal state.

    Returns ``(outcome, result)`` where ``result`` is the
    :class:`~repro.training.resilience.FaultInjectionResult` for
    completed cases and ``None`` for typed clean failures.  Exceptions
    outside :class:`~repro.errors.ReproError` propagate — they are
    harness bugs, not chaos outcomes.
    """
    spec = model or default_chaos_model()
    plan = FaultPlan.chaos(seed, num_nodes=num_gpus // gpus_per_node,
                           horizon_s=horizon_s, mtbf_s=mtbf_s,
                           max_extra_nodes=max_extra_nodes)
    membership_events = plan.membership_event_count
    try:
        result = run_fault_injected_training(
            spec, plan, num_gpus=num_gpus, gpus_per_node=gpus_per_node,
            total_iterations=total_iterations,
            checkpoint_interval=checkpoint_interval,
            restart_overhead_s=restart_overhead_s,
            sync_timeout_s=0.5, unit_timeout_s=1.0,
            comm_retries=1, retry_backoff_s=0.1, max_restarts=max_restarts,
            check_invariants=True, settings_cache=settings_cache)
    except ReproError as exc:
        return ChaosOutcome(
            seed=seed, status=type(exc).__name__, error=str(exc),
            planned_faults=len(plan),
            planned_membership_events=membership_events,
            state_digest=None, final_world=None, final_epoch=None,
            epoch_transitions=0, recoveries=0, wasted_iterations=None,
            total_time_s=None), None
    return ChaosOutcome(
        seed=seed, status="completed", error=None,
        planned_faults=len(plan),
        planned_membership_events=membership_events,
        state_digest=result.state_digest,
        final_world=result.final_num_gpus,
        final_epoch=result.final_epoch,
        epoch_transitions=len(result.epoch_transitions),
        recoveries=len(result.recoveries),
        wasted_iterations=result.wasted_iterations,
        total_time_s=result.total_time_s), result


def run_chaos_soak(
    seeds: t.Sequence[int],
    replays: int = 2,
    jsonl_path: str | pathlib.Path | None = None,
    **case_kwargs: t.Any,
) -> ChaosSoakReport:
    """Soak a seed set; enforce per-seed replay determinism.

    Each seed runs ``replays`` times; the outcome digests of all replays
    must be identical, otherwise :class:`~repro.errors.ReproError` is
    raised — a chaos schedule whose terminal state depends on anything
    but the seed is a determinism bug.  With ``jsonl_path`` set, one
    JSON line per seed records the outcome plus its recovery and
    epoch-transition timeline (the CI artifact).
    """
    if not seeds:
        raise ReproError("chaos soak needs at least one seed")
    if replays < 1:
        raise ReproError("replays must be >= 1")
    outcomes: list[ChaosOutcome] = []
    lines: list[str] = []
    for seed in seeds:
        outcome, result = run_chaos_case(seed, **case_kwargs)
        digest = outcome.outcome_digest()
        for _replay in range(replays - 1):
            again, _ = run_chaos_case(seed, **case_kwargs)
            if again.outcome_digest() != digest:
                raise ReproError(
                    f"chaos seed {seed} is not replay-deterministic: "
                    f"{outcome} vs {again}"
                )
        outcomes.append(outcome)
        if jsonl_path is not None:
            lines.append(json.dumps(_timeline_record(outcome, result),
                                    sort_keys=True))
    if jsonl_path is not None:
        # Atomic (temp + os.replace): a soak killed mid-write must not
        # leave a truncated artifact for CI/report consumers to choke on.
        atomic_write_text(jsonl_path, "\n".join(lines) + "\n")
    return ChaosSoakReport(outcomes=tuple(outcomes), replays=replays)


def _timeline_record(outcome: ChaosOutcome, result: t.Any) -> dict:
    """JSONL payload for one seed: outcome + recovery/epoch timeline."""
    record: dict[str, t.Any] = {
        "seed": outcome.seed,
        "status": outcome.status,
        "error": outcome.error,
        "outcome_digest": outcome.outcome_digest(),
        "planned_faults": outcome.planned_faults,
        "planned_membership_events": outcome.planned_membership_events,
        "recoveries": [],
        "epoch_transitions": [],
    }
    if result is None:
        return record
    record.update(
        state_digest=result.state_digest,
        final_world=result.final_num_gpus,
        final_epoch=result.final_epoch,
        total_time_s=result.total_time_s,
        wasted_iterations=result.wasted_iterations,
    )
    record["recoveries"] = [
        {
            "failed_nodes": list(r.failed_nodes),
            "injected_at_s": r.injected_at_s,
            "suspected_at_s": r.suspected_at_s,
            "confirmed_at_s": r.confirmed_at_s,
            "resumed_at_s": r.resumed_at_s,
            "failed_at_iteration": r.failed_at_iteration,
            "resumed_iteration": r.resumed_iteration,
        }
        for r in result.recoveries
    ]
    record["epoch_transitions"] = [
        {
            "epoch": tr.epoch,
            "at_s": tr.at_s,
            "kind": tr.kind,
            "departed": list(tr.departed),
            "joined": list(tr.joined),
            "world_before": tr.world_before,
            "world_after": tr.world_after,
            "live_continuation": tr.live_continuation,
            "broadcast_identical": tr.broadcast_identical,
            "resumed_iteration": tr.resumed_iteration,
            "lr_scale": tr.lr_scale,
            "reconfigure_time_s": tr.reconfigure_time_s,
            "retuned": tr.retuned,
        }
        for tr in result.epoch_transitions
    ]
    return record
