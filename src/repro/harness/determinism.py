"""Deterministic-replay probes for the seed x config determinism matrix.

The simulator's replay-determinism guarantee (PR 2) is only worth
anything if it survives hot-path rewrites.  This module packages one
training run per matrix cell — ranks x streams x {faults on/off} x
{invariants on/off} — behind a single function so the determinism test
suite, the benchmark harness and ad-hoc debugging all probe the exact
same configurations.

Each probe returns the run's :meth:`~repro.sim.kernel.Simulator.
state_digest` (``None`` when the invariant checker is off — the digest
is the checker's event-sequence fold) plus the measured iteration times,
which stay comparable even without a digest.

Seed semantics
--------------
The training pipeline itself draws no random numbers, so the probe
derives every seed-sensitive input deterministically from ``seed``:

* with faults on, the seed selects the crash victim and the crash time
  of the injected :class:`~repro.sim.faults.NodeCrash`;
* with faults off, the seed adds ``seed * SEED_JITTER_S`` of forward
  time — a deliberately tiny, seed-keyed perturbation whose only job is
  to shift every subsequent event timestamp so that two different seeds
  provably produce two different digests.

Both channels leave ``seed=0`` byte-identical to the unseeded run.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.core.runtime import AIACCConfig
from repro.errors import TrainingError
from repro.frameworks import make_backend
from repro.frameworks.base import IterationStats
from repro.models.zoo import get_model
from repro.sim.faults import FaultPlan, NodeCrash
from repro.sim.kernel import Simulator
from repro.training.trainer import build_train_context

#: Forward-time jitter per seed unit in the fault-free probe (seconds).
SEED_JITTER_S = 1e-6

#: Model used by every probe: mid-sized, exercises packing + streams.
PROBE_MODEL = "resnet50"


@dataclasses.dataclass(frozen=True)
class DeterminismProbe:
    """Outcome of one determinism-matrix cell."""

    ranks: int
    streams: int
    faults: bool
    invariants: bool
    seed: int
    #: Event-sequence digest; ``None`` when invariants are off.
    digest: str | None
    iteration_times_s: tuple[float, ...]
    #: All-reduce algorithm of the probed run.
    algorithm: str = "ring"

    @property
    def key(self) -> str:
        """Stable identifier used by the golden-digest file."""
        return probe_key(self.ranks, self.streams, self.faults,
                         self.invariants, self.seed, self.algorithm)


def probe_key(ranks: int, streams: int, faults: bool, invariants: bool,
              seed: int, algorithm: str = "ring") -> str:
    """Canonical name of one matrix cell (JSON key in the golden file).

    The default ring algorithm keeps the legacy key format so existing
    golden entries stay addressable; planner-backend cells append an
    ``-<algorithm>`` suffix.
    """
    key = (f"r{ranks}-s{streams}"
           f"-{'faults' if faults else 'nofaults'}"
           f"-{'inv' if invariants else 'noinv'}-seed{seed}")
    if algorithm != "ring":
        key += f"-{algorithm}"
    return key


@dataclasses.dataclass(frozen=True)
class DiagnosisProbe:
    """Outcome of one diagnosis-determinism cell."""

    straggler_rank: int | None
    straggler_factor: float
    seed: int
    #: Canonical findings digest (see ``repro.obs.diagnosis``).
    findings_digest: str
    findings: int

    @property
    def key(self) -> str:
        """Stable identifier used by the golden-findings file."""
        return diagnosis_probe_key(self.straggler_rank,
                                   self.straggler_factor, self.seed)


def diagnosis_probe_key(straggler_rank: int | None,
                        straggler_factor: float = 3.0,
                        seed: int = 0) -> str:
    """Canonical name of one diagnosis cell (golden-findings JSON key)."""
    scenario = ("clean" if straggler_rank is None
                else f"straggler-r{straggler_rank}-x{straggler_factor:g}")
    return f"diag-{scenario}-seed{seed}"


def diagnosis_probe(straggler_rank: int | None = None,
                    straggler_factor: float = 3.0,
                    seed: int = 0) -> DiagnosisProbe:
    """Diagnose one message-level iteration; returns the findings digest.

    The workload is a seed-keyed synthetic model on 2 nodes x 2 GPUs
    with streaming detectors attached; ``straggler_rank`` injects a
    compute-skewed straggler.  The digest must be bit-identical across
    runs and commits — it is pinned in ``golden_findings.json`` next to
    the event-sequence golden digests.
    """
    from repro.models.synthetic import random_model_spec
    from repro.obs import Observability, diagnose
    from repro.obs.report import build_step_report

    spec = random_model_spec(seed, num_layers=8, total_parameters=400_000,
                             total_forward_flops=1e9,
                             compute_occupancy=0.5)
    obs = Observability(enabled=True)
    obs.attach_detectors()
    skew = None if straggler_rank is None \
        else {straggler_rank: straggler_factor}
    report = build_step_report(
        model=t.cast(str, spec), num_nodes=2, gpus_per_node=2,
        config=AIACCConfig(num_streams=4), seed=seed, obs=obs,
        compute_skew=skew)
    diagnosis = diagnose(obs, attributions=report.attributions)
    return DiagnosisProbe(
        straggler_rank=straggler_rank, straggler_factor=straggler_factor,
        seed=seed, findings_digest=diagnosis.findings_digest,
        findings=len(diagnosis.findings))


def _fault_layout(ranks: int) -> int:
    """GPUs per node for the fault probe (needs >= 2 whole nodes)."""
    if ranks < 2:
        raise TrainingError("fault probes need at least 2 ranks")
    return min(8, ranks // 2)


def run_probe(ranks: int, streams: int = 4, faults: bool = False,
              invariants: bool = True, seed: int = 0,
              iterations: int = 2, model: str = PROBE_MODEL,
              algorithm: str = "ring") -> DeterminismProbe:
    """Run one matrix cell and return its digest + iteration times."""
    if faults:
        if algorithm != "ring":
            raise TrainingError(
                "fault probes only cover the ring algorithm")
        return _run_fault_probe(ranks, streams, invariants, seed,
                                iterations, model)
    return _run_clean_probe(ranks, streams, invariants, seed,
                            iterations, model, algorithm)


def _run_clean_probe(ranks: int, streams: int, invariants: bool,
                     seed: int, iterations: int, model: str,
                     algorithm: str = "ring") -> DeterminismProbe:
    spec = get_model(model)
    config = AIACCConfig(num_streams=streams, check_invariants=invariants,
                         algorithm=algorithm)
    backend = make_backend("aiacc", config=config)
    sim = Simulator(check_invariants=invariants)
    ctx = build_train_context(
        spec, backend, ranks, spec.default_batch_size, sim=sim,
        extra_forward_time_s=seed * SEED_JITTER_S)
    warm = sim.spawn(backend.warmup(ctx), name="warmup")
    sim.run(until=warm)
    times: list[float] = []
    for index in range(iterations):
        proc = sim.spawn(backend.iteration(ctx), name=f"iter{index}")
        sim.run(until=proc)
        times.append(t.cast(IterationStats, proc.value).iteration_time_s)
    return DeterminismProbe(
        ranks=ranks, streams=streams, faults=False, invariants=invariants,
        seed=seed, digest=sim.state_digest(),
        iteration_times_s=tuple(times), algorithm=algorithm)


def _run_fault_probe(ranks: int, streams: int, invariants: bool,
                     seed: int, iterations: int,
                     model: str) -> DeterminismProbe:
    from repro.training.resilience import run_fault_injected_training

    gpus_per_node = _fault_layout(ranks)
    num_nodes = ranks // gpus_per_node
    # Seed-keyed single crash: victim node and crash time both derive
    # from the seed, so different seeds yield different fault timelines.
    victim = seed % num_nodes
    crash_at = 0.4 + 0.01 * (seed % 7)
    plan = FaultPlan([NodeCrash(at_s=crash_at, node=victim)])
    config = AIACCConfig(num_streams=streams, check_invariants=invariants)
    backend = make_backend("aiacc", config=config)
    result = run_fault_injected_training(
        model, plan, backend=backend, num_gpus=ranks,
        gpus_per_node=gpus_per_node, total_iterations=iterations,
        checkpoint_interval=max(1, iterations // 2),
        check_invariants=invariants)
    return DeterminismProbe(
        ranks=ranks, streams=streams, faults=True, invariants=invariants,
        seed=seed, digest=result.state_digest,
        iteration_times_s=tuple(result.iteration_times_s))
