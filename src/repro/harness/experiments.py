"""Experiment definitions: one function per paper table/figure.

Each function runs the relevant simulations and returns a list of row
dicts; the benchmarks in ``benchmarks/`` drive these, assert the paper's
shape criteria, and persist the regenerated tables.

The AIACC configuration per deployment comes from
:func:`tuned_aiacc_config`, a deterministic heuristic matching what the
auto-tuner converges to (streams grow with node count; granularity larger
for Transformer-family models — paper §VIII-D); the autotuner experiment
itself runs the real ensemble search.
"""

from __future__ import annotations

import typing as t

from repro.core.runtime import AIACCConfig
from repro.frameworks import make_backend
from repro.models.base import ModelSpec
from repro.models.zoo import get_model
from repro.sim.rdma import RDMA, RDMA_DEFAULT_BANDWIDTH_BPS
from repro.sim.tcp import TCP
from repro.training.convergence import time_to_accuracy
from repro.training.hybrid import run_hybrid_training
from repro.training.trainer import ThroughputResult, run_training

#: GPU counts of the paper's scalability axes (8 GPUs per node).
SCALE_AXIS = (8, 16, 32, 64, 128, 256)

#: Backends in the paper's Fig. 9/10 comparison.
PYTORCH_BACKENDS = ("aiacc", "horovod", "pytorch-ddp", "byteps")

#: Declarative axes of the paper's figure sweeps (Figs. 9-13).
#:
#: One source of truth consumed both by the in-process harness
#: functions below and by the campaign service
#: (:func:`repro.campaign.grid.figures_grids`), so ``python -m repro
#: campaign run --grid figures`` regenerates exactly the published
#: cells — each one a durable, individually retryable run.
FIGURE_SWEEPS: dict[str, dict] = {
    "fig9": {"models": ("vgg16", "resnet50", "resnet101"),
             "backends": PYTORCH_BACKENDS, "gpus": SCALE_AXIS},
    "fig10": {"models": ("transformer", "bert-large"),
              "backends": PYTORCH_BACKENDS, "gpus": SCALE_AXIS},
    "fig11": {"models": ("vgg16", "resnet50", "bert-large"),
              "backends": ("aiacc", "horovod"), "gpus": SCALE_AXIS},
    "fig12": {"models": ("vgg16", "resnet50"),
              "backends": ("aiacc", "mxnet-kvstore"), "gpus": SCALE_AXIS},
    "fig13": {"models": ("resnet50",),
              "backends": ("aiacc", "mxnet-kvstore"),
              "gpus": (8, 16, 32, 64), "runner": "hybrid",
              "base": {"model_parallel_degree": 2}},
}


def tuned_aiacc_config(model: str | ModelSpec,
                       num_gpus: int) -> AIACCConfig:
    """Heuristic stand-in for the auto-tuner's converged setting.

    Streams scale with node count ("AIACC-Training tends to use a larger
    number of CUDA streams when a higher number of GPUs is available");
    granularity is larger for Transformer-family workloads ("the chosen
    communication granularity is larger for the Transformer-based model").
    """
    spec = get_model(model) if isinstance(model, str) else model
    nodes = max(1, num_gpus // 8)
    streams = min(24, max(2, 2 * nodes))
    if spec.category == "NLP":
        granularity = 32e6
    elif spec.category == "CTR":
        granularity = 4e6
    else:
        granularity = 8e6
    return AIACCConfig(num_streams=streams, granularity_bytes=granularity)


def measure(model: str | ModelSpec, backend_name: str, num_gpus: int,
            batch_per_gpu: int | None = None,
            transport: t.Any = TCP,
            nic_bandwidth_bps: float = 30e9,
            iterations: int = 3) -> ThroughputResult:
    """One throughput measurement with per-deployment AIACC tuning."""
    if backend_name == "aiacc":
        backend: t.Any = make_backend(
            "aiacc", config=tuned_aiacc_config(model, num_gpus))
    else:
        backend = make_backend(backend_name)
    return run_training(
        model, backend, num_gpus, batch_per_gpu=batch_per_gpu,
        measure_iterations=iterations, warmup_iterations=1,
        transport=transport, nic_bandwidth_bps=nic_bandwidth_bps)


# --------------------------------------------------------------------------
# Motivation and microbenchmarks
# --------------------------------------------------------------------------

def fig2_motivation(gpu_counts: t.Sequence[int] = (1, 8, 16, 32)
                    ) -> list[dict]:
    """Fig. 2: Horovod throughput vs. the theoretical linear speedup."""
    rows = []
    single: float | None = None
    for gpus in gpu_counts:
        result = measure("resnet50", "horovod", gpus)
        if single is None:
            single = result.single_gpu_throughput
        rows.append({
            "gpus": gpus,
            "horovod_throughput": result.throughput,
            "linear_throughput": single * gpus,
            "scaling_efficiency": result.throughput / (single * gpus),
        })
    return rows


def bandwidth_utilization(streams_axis: t.Sequence[int] = (1, 2, 4, 8, 16)
                          ) -> list[dict]:
    """§III claim: one TCP stream reaches ≤30% of the link bandwidth."""
    from repro.collectives import TimedCollectives
    from repro.sim import FluidNetwork, Simulator, alibaba_v100_cluster

    rows = []
    size = 240e6
    for streams in streams_axis:
        sim = Simulator()
        net = FluidNetwork(sim)
        cluster = alibaba_v100_cluster(sim, 16)
        timed = TimedCollectives(sim, net, cluster)
        events = [timed.allreduce(size / streams) for _ in range(streams)]
        sim.run(until=sim.all_of(events))
        raw_bandwidth = 30e9
        hop_bits = 2 * size * (15 / 16) * 8
        utilization = hop_bits / sim.now / raw_bandwidth
        rows.append({
            "streams": streams,
            "transfer_s": sim.now,
            "utilization": min(1.0, utilization),
        })
    return rows


# --------------------------------------------------------------------------
# Main throughput figures
# --------------------------------------------------------------------------

def throughput_matrix(models: t.Sequence[str],
                      backends: t.Sequence[str] = PYTORCH_BACKENDS,
                      gpu_counts: t.Sequence[int] = SCALE_AXIS,
                      **measure_kwargs: t.Any) -> list[dict]:
    """Generic (model x backend x #GPUs) throughput sweep."""
    rows = []
    for model in models:
        for gpus in gpu_counts:
            row: dict[str, object] = {"model": model, "gpus": gpus}
            for backend in backends:
                result = measure(model, backend, gpus, **measure_kwargs)
                row[backend] = result.throughput
                row[f"{backend}_eff"] = result.scaling_efficiency
            rows.append(row)
    return rows


def fig9_cv_pytorch(gpu_counts: t.Sequence[int] | None = None) -> list[dict]:
    """Fig. 9: PyTorch CV models, all four backends."""
    sweep = FIGURE_SWEEPS["fig9"]
    return throughput_matrix(sweep["models"], backends=sweep["backends"],
                             gpu_counts=gpu_counts or sweep["gpus"])


def fig10_nlp_pytorch(gpu_counts: t.Sequence[int] | None = None
                      ) -> list[dict]:
    """Fig. 10: PyTorch NLP models, all four backends."""
    sweep = FIGURE_SWEEPS["fig10"]
    return throughput_matrix(sweep["models"], backends=sweep["backends"],
                             gpu_counts=gpu_counts or sweep["gpus"])


def fig11_tensorflow(gpu_counts: t.Sequence[int] | None = None
                     ) -> list[dict]:
    """Fig. 11: TensorFlow models — AIACC vs. Horovod all-reduce.

    TensorFlow's distribution path is Horovod's all-reduce engine; the
    unified AIACC library applies the identical optimization, so the
    backend pair is (aiacc, horovod) over the TF workloads.
    """
    sweep = FIGURE_SWEEPS["fig11"]
    return throughput_matrix(sweep["models"], backends=sweep["backends"],
                             gpu_counts=gpu_counts or sweep["gpus"])


def fig12_mxnet(gpu_counts: t.Sequence[int] | None = None) -> list[dict]:
    """Fig. 12: MXNet models — AIACC vs. the native KVStore PS."""
    sweep = FIGURE_SWEEPS["fig12"]
    return throughput_matrix(sweep["models"], backends=sweep["backends"],
                             gpu_counts=gpu_counts or sweep["gpus"])


# --------------------------------------------------------------------------
# Further analysis (§VIII-D)
# --------------------------------------------------------------------------

def fig13_hybrid(gpu_counts: t.Sequence[int] | None = None
                 ) -> list[dict]:
    """Fig. 13: hybrid data+model parallelism, AIACC vs MXNet KVStore."""
    rows = []
    for gpus in gpu_counts or FIGURE_SWEEPS["fig13"]["gpus"]:
        aiacc = run_hybrid_training(
            "resnet50", "aiacc", gpus, model_parallel_degree=2,
            measure_iterations=3, warmup_iterations=1,
            backend_options={"config": tuned_aiacc_config("resnet50",
                                                          gpus)})
        kvstore = run_hybrid_training(
            "resnet50", "mxnet-kvstore", gpus, model_parallel_degree=2,
            measure_iterations=3, warmup_iterations=1)
        rows.append({
            "gpus": gpus,
            "aiacc": aiacc.throughput,
            "mxnet-kvstore": kvstore.throughput,
            "speedup": aiacc.throughput / kvstore.throughput,
        })
    return rows


def fig14_batchsize(batch_sizes: t.Sequence[int] = (2, 4, 8, 16, 32, 64),
                    num_gpus: int = 16) -> list[dict]:
    """Fig. 14: BERT-Large speedup over Horovod vs. per-GPU batch size."""
    rows = []
    for batch in batch_sizes:
        aiacc = measure("bert-large", "aiacc", num_gpus,
                        batch_per_gpu=batch)
        horovod = measure("bert-large", "horovod", num_gpus,
                          batch_per_gpu=batch)
        rows.append({
            "batch_per_gpu": batch,
            "aiacc": aiacc.throughput,
            "horovod": horovod.throughput,
            "speedup": aiacc.throughput / horovod.throughput,
        })
    return rows


def fig15_rdma(models: t.Sequence[str] = ("resnet50", "vgg16",
                                          "bert-large", "gpt2-xl"),
               num_gpus: int = 64) -> list[dict]:
    """Fig. 15: RDMA nodes (64 GPUs), speedup over PyTorch-DDP."""
    rows = []
    for model in models:
        aiacc = measure(model, "aiacc", num_gpus, transport=RDMA,
                        nic_bandwidth_bps=RDMA_DEFAULT_BANDWIDTH_BPS)
        ddp = measure(model, "pytorch-ddp", num_gpus, transport=RDMA,
                      nic_bandwidth_bps=RDMA_DEFAULT_BANDWIDTH_BPS)
        rows.append({
            "model": model,
            "aiacc": aiacc.throughput,
            "pytorch-ddp": ddp.throughput,
            "speedup": aiacc.throughput / ddp.throughput,
        })
    return rows


def scaling_efficiency_summary() -> list[dict]:
    """§VIII-A text claims: efficiencies and speedups at 32/256 GPUs."""
    rows = []
    for model, gpus in (("resnet50", 32), ("vgg16", 32),
                        ("resnet50", 256), ("vgg16", 256)):
        aiacc = measure(model, "aiacc", gpus)
        horovod = measure(model, "horovod", gpus)
        ddp = measure(model, "pytorch-ddp", gpus)
        rows.append({
            "model": model,
            "gpus": gpus,
            "aiacc_eff": aiacc.scaling_efficiency,
            "horovod_eff": horovod.scaling_efficiency,
            "speedup_vs_horovod": aiacc.throughput / horovod.throughput,
            "speedup_vs_ddp": aiacc.throughput / ddp.throughput,
        })
    return rows


def ctr_production(num_gpus: int = 128) -> list[dict]:
    """§VIII-C: the production CTR workload, AIACC vs Horovod."""
    aiacc = measure("ctr", "aiacc", num_gpus)
    horovod = measure("ctr", "horovod", num_gpus)
    return [{
        "gpus": num_gpus,
        "aiacc_entries_per_s": aiacc.throughput,
        "horovod_entries_per_s": horovod.throughput,
        "speedup": aiacc.throughput / horovod.throughput,
    }]


def dawnbench(num_gpus: int = 128) -> list[dict]:
    """§VIII-C: DAWNBench time/cost to 93% top-5 on ImageNet."""
    aiacc = measure("resnet50", "aiacc", num_gpus)
    tta = time_to_accuracy(aiacc.throughput, num_gpus)
    return [{
        "gpus": num_gpus,
        "throughput": aiacc.throughput,
        "train_seconds": tta.train_seconds,
        "instances": tta.num_instances,
        "cost_usd": tta.cost_usd,
    }]


def autotune_parameters(deployments: t.Sequence[tuple[str, int]] = (
        ("resnet50", 16), ("resnet50", 128), ("bert-large", 64)),
        budget: int = 30) -> list[dict]:
    """§VIII-D: what the real auto-tuner chooses per deployment."""
    from repro.autotune import AutoTuner, make_evaluator

    rows = []
    for model, gpus in deployments:
        tuner = AutoTuner(budget=budget, seed=0)
        result = tuner.tune(make_evaluator(model, gpus))
        rows.append({
            "model": model,
            "gpus": gpus,
            "streams": result.best_point.num_streams,
            "granularity_mb": result.best_point.granularity_bytes / 1e6,
            "algorithm": result.best_point.algorithm,
            "iteration_s": result.best_cost_s,
        })
    return rows


def congested_algorithm_choice(num_gpus: int = 32,
                               congestion: float = 0.25) -> list[dict]:
    """§V-B: the hierarchical ("tree") all-reduce pays off on congested
    links.

    "[The tree all-reduce] is useful when some of the physical network
    links become congested due to burst communications from other shared
    cloud users."  Compares ring vs hierarchical AIACC iterations on a
    healthy fabric and on one with a congested node NIC.
    """
    rows = []
    for scenario, links in (("healthy", None),
                            ("congested", {1: congestion})):
        times: dict[str, float] = {}
        for algorithm in ("ring", "hierarchical"):
            config = AIACCConfig(num_streams=16, granularity_bytes=8e6,
                                 algorithm=algorithm)
            result = run_training(
                "resnet50", make_backend("aiacc", config=config),
                num_gpus, measure_iterations=2, warmup_iterations=1,
                congested_links=links)
            times[algorithm] = result.mean_iteration_s
        rows.append({
            "scenario": scenario,
            "ring_iteration_s": times["ring"],
            "hierarchical_iteration_s": times["hierarchical"],
            "hierarchical_speedup": times["ring"] / times["hierarchical"],
        })
    return rows


def planner_backend_sweep(num_gpus: int = 32,
                          size_bytes: float = 100e6,
                          oversubscription: float = 4.0) -> list[dict]:
    """§V: planner-synthesized backends vs the built-in all-reduces.

    Times one steady-state all-reduce per algorithm — flat ring,
    hierarchical, and the three planner schedules (halving-doubling,
    multi-tree, in-network aggregation) — on a healthy fabric and on a
    leaf-spine core oversubscribed ``oversubscription``:1.  The ``ina``
    backend pushes ~S(1+1/m) bytes per node through the core instead of
    the ring's ~2S, so it should win exactly when the spine is the
    bottleneck and lose when the NICs are.
    """
    from repro.collectives.timed import ALGORITHMS, TimedCollectives
    from repro.sim.kernel import Simulator
    from repro.sim.network import FluidNetwork
    from repro.sim.topology import alibaba_v100_cluster

    rows = []
    for scenario, over in (("healthy", 1.0),
                           ("oversubscribed", oversubscription)):
        times: dict[str, float] = {}
        for algorithm in ALGORITHMS:
            sim = Simulator()
            cluster = alibaba_v100_cluster(
                sim, num_gpus, core_oversubscription=over)
            timed = TimedCollectives(sim, FluidNetwork(sim), cluster)
            done = timed.allreduce(size_bytes, algorithm=algorithm)
            sim.run(until=done)
            times[algorithm] = sim.now
        row: dict[str, t.Any] = {"scenario": scenario}
        row.update({f"{name}_ms": times[name] * 1e3
                    for name in ALGORITHMS})
        row["best"] = min(times, key=lambda name: times[name])
        rows.append(row)
    return rows


def insightface_speedup(num_gpus: int = 128) -> list[dict]:
    """§VIII-C: InsightFace face recognition, AIACC vs hand-tuned Horovod.

    "AIACC-Training improves the hand-tuned DDL code by 3.8x when using
    128 GPUs" — the 512 x 1M-identity ArcFace head makes this workload
    far more communication-bound than ImageNet ResNet-50.
    """
    aiacc = measure("insightface-r50", "aiacc", num_gpus)
    horovod = measure("insightface-r50", "horovod", num_gpus)
    return [{
        "gpus": num_gpus,
        "aiacc_images_per_s": aiacc.throughput,
        "horovod_images_per_s": horovod.throughput,
        "speedup": aiacc.throughput / horovod.throughput,
    }]


def future_gpu_whatif(num_gpus: int = 64) -> list[dict]:
    """§VIII-A what-if: "we expect AIACC-Training will deliver better
    performance on future high-end GPUs by leveraging the hardware
    parallelism."

    Swaps the V100 for an A100 (more SMs for concurrent communication
    streams, faster compute shrinking the overlap window) on the same
    30 Gbps network and compares the AIACC-vs-Horovod gap.
    """
    from repro.sim.cuda import A100, V100

    rows = []
    for label, gpu in (("V100", V100), ("A100", A100)):
        aiacc = run_training(
            "vgg16", make_backend(
                "aiacc", config=tuned_aiacc_config("vgg16", num_gpus)),
            num_gpus, measure_iterations=3, warmup_iterations=1,
            gpu_spec=gpu)
        horovod = run_training("vgg16", "horovod", num_gpus,
                               measure_iterations=3, warmup_iterations=1,
                               gpu_spec=gpu)
        rows.append({
            "gpu": label,
            "aiacc": aiacc.throughput,
            "horovod": horovod.throughput,
            "speedup": aiacc.throughput / horovod.throughput,
        })
    return rows
