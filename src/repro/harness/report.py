"""Report formatting for experiment results.

Experiments produce lists of row dicts; this module renders them as
aligned text/markdown tables and persists them under ``results/`` so a
benchmark run leaves the regenerated paper tables on disk.
"""

from __future__ import annotations

import pathlib
import typing as t

from repro.errors import ReproError

Row = t.Mapping[str, object]


def format_cell(value: object) -> str:
    """Human-friendly cell rendering (SI-ish numbers, 3 significant)."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6:
            return f"{value / 1e6:.1f}M"
        if abs(value) >= 1e4:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: t.Sequence[Row],
                 columns: t.Sequence[str] | None = None,
                 title: str = "") -> str:
    """Render rows as a markdown table."""
    if not rows:
        raise ReproError("cannot format an empty table")
    cols = list(columns) if columns else list(rows[0].keys())
    rendered = [[format_cell(row.get(col, "")) for col in cols]
                for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in rendered))
              for i, col in enumerate(cols)]

    def fmt_line(cells: t.Sequence[str]) -> str:
        return "| " + " | ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)) + " |"

    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append(fmt_line(cols))
    lines.append("|" + "|".join("-" * (width + 2) for width in widths) + "|")
    lines.extend(fmt_line(line) for line in rendered)
    return "\n".join(lines)


def save_report(name: str, content: str,
                directory: str | pathlib.Path = "results") -> pathlib.Path:
    """Write a report file; returns its path."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.md"
    path.write_text(content + "\n")
    return path


def series_summary(rows: t.Sequence[Row], key: str, value: str
                   ) -> dict[object, object]:
    """Collapse rows to ``{row[key]: row[value]}`` for quick assertions."""
    return {row[key]: row[value] for row in rows}


def ascii_chart(rows: t.Sequence[Row], label_key: str,
                value_keys: t.Sequence[str], width: int = 48,
                title: str = "") -> str:
    """Render grouped horizontal bars for quick terminal visualisation.

    One group per row (labelled by ``row[label_key]``), one bar per value
    key, all scaled to the global maximum.  Used by the CLI so
    ``python -m repro bench fig9`` shows the figure's shape, not just the
    table.
    """
    if not rows:
        raise ReproError("cannot chart an empty series")
    values = [float(t.cast(float, row[key]))
              for row in rows for key in value_keys
              if row.get(key) is not None]
    if not values or max(values) <= 0:
        raise ReproError("chart needs at least one positive value")
    peak = max(values)
    label_width = max(len(str(row[label_key])) for row in rows)
    key_width = max(len(key) for key in value_keys)

    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    for row in rows:
        lines.append(f"{str(row[label_key]).ljust(label_width)}")
        for key in value_keys:
            value = row.get(key)
            if value is None:
                continue
            bar = "#" * max(1, round(float(t.cast(float, value))
                                     / peak * width))
            lines.append(f"  {key.ljust(key_width)} |{bar} "
                         f"{format_cell(value)}")
    return "\n".join(lines)
