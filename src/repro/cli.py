"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Print the paper's Table I from the model registry.
``train``
    Measure one training deployment (model x backend x GPUs).
``bench``
    Run a named paper experiment and print its table.
``tune``
    Run the Section VI auto-tuner on a deployment.
``translate``
    Port a Horovod or sequential training script to the Perseus API.
``faults``
    Inject node crashes into a simulated run and report the measured
    recovery trajectory (detection latency, rebuild time, goodput).
``chaos``
    Soak the elastic runtime under random schedules mixing crashes,
    flaps, stragglers, clean leaves and joins: every seed must
    terminate (complete or typed clean failure) with a deterministic
    outcome digest across replays.
``report``
    Run one fully-instrumented iteration and emit the observability
    report: per-rank step-time attribution, per-stream lane usage,
    per-link utilisation, plus Perfetto/Prometheus/JSONL artifacts.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import typing as t

from repro.errors import ReproError

#: Experiment name -> harness function (resolved lazily).
EXPERIMENTS = (
    "fig2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "scaling", "ctr", "dawnbench", "autotune", "bandwidth", "congested",
    "insightface", "futuregpu",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AIACC-Training reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_check_invariants(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--check-invariants", action="store_true",
            help="run under the simulation-wide invariant checker "
            "(resource accounting, cross-worker agreement, replay "
            "digest); equivalent to REPRO_CHECK_INVARIANTS=1")

    sub.add_parser("table1", help="print Table I (model characteristics)")

    train = sub.add_parser("train", help="measure one deployment")
    train.add_argument("--model", default="resnet50")
    train.add_argument("--backend", default="aiacc",
                       help="aiacc|horovod|pytorch-ddp|byteps|mxnet-kvstore")
    train.add_argument("--gpus", type=int, default=32)
    train.add_argument("--batch", type=int, default=None)
    train.add_argument("--rdma", action="store_true",
                       help="use the RDMA transport (100 Gbps)")
    train.add_argument("--streams", type=int, default=None,
                       help="AIACC stream count (default: tuned heuristic)")
    train.add_argument("--granularity-mb", type=float, default=None,
                       help="AIACC unit granularity in MB")
    add_check_invariants(train)

    bench = sub.add_parser("bench", help="run a paper experiment")
    bench.add_argument("experiment", choices=EXPERIMENTS + ("all",))
    add_check_invariants(bench)

    tune = sub.add_parser("tune", help="run the §VI auto-tuner")
    tune.add_argument("--model", default="resnet50")
    tune.add_argument("--gpus", type=int, default=64)
    tune.add_argument("--budget", type=int, default=40)
    tune.add_argument("--seed", type=int, default=0)
    add_check_invariants(tune)

    translate = sub.add_parser("translate",
                               help="port a script to the Perseus API")
    translate.add_argument("script", type=pathlib.Path)
    translate.add_argument("--mode", choices=("horovod", "sequential"),
                           default="horovod")
    translate.add_argument("--workers", type=int, default=8)
    translate.add_argument("--output", type=pathlib.Path, default=None,
                           help="write here instead of stdout")

    faults = sub.add_parser(
        "faults", help="fault-injected training with self-healing recovery")
    faults.add_argument("--model", default="resnet50")
    faults.add_argument("--gpus", type=int, default=16)
    faults.add_argument("--iterations", type=int, default=20)
    faults.add_argument("--checkpoint-interval", type=int, default=5)
    faults.add_argument("--crash-node", type=int, action="append",
                        default=None,
                        help="node index to crash (repeatable; "
                        "default: node 1)")
    faults.add_argument("--crash-at", type=float, action="append",
                        default=None,
                        help="injection time in simulated seconds for the "
                        "matching --crash-node (default: 25%% of the run)")
    faults.add_argument("--mtbf", type=float, default=None,
                        help="draw a Poisson crash schedule with this mean "
                        "time between failures instead of --crash-node")
    faults.add_argument("--seed", type=int, default=0,
                        help="random seed for the --mtbf schedule")
    faults.add_argument("--sync-timeout", type=float, default=1.0)
    faults.add_argument("--unit-timeout", type=float, default=2.0)
    faults.add_argument("--retries", type=int, default=1)
    faults.add_argument("--trace-out", type=pathlib.Path, default=None,
                        help="write a Chrome trace JSON of the run")
    add_check_invariants(faults)

    chaos = sub.add_parser(
        "chaos", help="chaos soak: random crash/leave/join schedules")
    chaos.add_argument("--seeds", type=int, default=20,
                       help="number of random schedules (seeds 0..N-1)")
    chaos.add_argument("--seed-base", type=int, default=0,
                       help="first seed of the sweep")
    chaos.add_argument("--replays", type=int, default=2,
                       help="replays per seed; outcome digests must match")
    chaos.add_argument("--gpus", type=int, default=8)
    chaos.add_argument("--gpus-per-node", type=int, default=2)
    chaos.add_argument("--iterations", type=int, default=12)
    chaos.add_argument("--mtbf", type=float, default=0.35,
                       help="mean seconds between scheduled faults")
    chaos.add_argument("--horizon", type=float, default=2.5,
                       help="fault schedule horizon in simulated seconds")
    chaos.add_argument("--jsonl", type=pathlib.Path, default=None,
                       help="write the per-seed recovery/epoch timeline "
                       "here (JSONL)")

    report = sub.add_parser(
        "report", help="step-time attribution report with trace artifacts")
    report.add_argument("--model", default="resnet50")
    report.add_argument("--nodes", type=int, default=2)
    report.add_argument("--gpus-per-node", type=int, default=2)
    report.add_argument("--streams", type=int, default=None,
                        help="AIACC stream count (default: config default)")
    report.add_argument("--granularity-mb", type=float, default=None,
                        help="AIACC unit granularity in MB")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("results/report"),
                        help="directory for trace.json / timeline.jsonl / "
                        "metrics.prom")

    return parser


# -- command implementations ---------------------------------------------------

def cmd_table1(_args: argparse.Namespace) -> int:
    from repro.harness import format_table
    from repro.models import table1

    print(format_table(table1(), title="Table I: DNN model characteristics"))
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from repro.frameworks import make_backend
    from repro.harness import tuned_aiacc_config
    from repro.sim.rdma import RDMA, RDMA_DEFAULT_BANDWIDTH_BPS
    from repro.sim.tcp import TCP
    from repro.training.trainer import run_training

    transport = RDMA if args.rdma else TCP
    nic = RDMA_DEFAULT_BANDWIDTH_BPS if args.rdma else 30e9
    backend: t.Any = args.backend
    if args.backend == "aiacc":
        config = tuned_aiacc_config(args.model, args.gpus)
        overrides: dict[str, t.Any] = {}
        if args.streams is not None:
            overrides["num_streams"] = args.streams
        if args.granularity_mb is not None:
            overrides["granularity_bytes"] = args.granularity_mb * 1e6
        if overrides:
            config = config.replace(**overrides)
        backend = make_backend("aiacc", config=config)
    result = run_training(args.model, backend, args.gpus,
                          batch_per_gpu=args.batch,
                          transport=transport, nic_bandwidth_bps=nic)
    print(f"model:              {result.model}")
    print(f"backend:            {result.backend}")
    print(f"GPUs:               {result.num_gpus}")
    print(f"batch/GPU:          {result.batch_per_gpu}")
    print(f"iteration time:     {result.mean_iteration_s * 1e3:.2f} ms")
    print(f"throughput:         {result.throughput:,.0f} "
          f"{result.sample_unit}/s")
    print(f"scaling efficiency: {result.scaling_efficiency:.3f}")
    print(f"exposed comm:       {result.exposed_comm_s * 1e3:.2f} ms/iter")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro import harness
    from repro.harness import ascii_chart, format_table, save_report

    #: Optional bar-chart rendering: name -> (label_key, value_keys).
    charts: dict[str, tuple[str, list[str]]] = {
        "fig2": ("gpus", ["horovod_throughput", "linear_throughput"]),
        "fig13": ("gpus", ["aiacc", "mxnet-kvstore"]),
        "fig14": ("batch_per_gpu", ["speedup"]),
        "fig15": ("model", ["speedup"]),
        "bandwidth": ("streams", ["utilization"]),
        "congested": ("scenario", ["hierarchical_speedup"]),
    }

    runners: dict[str, tuple[t.Callable[[], list], str]] = {
        "fig2": (harness.fig2_motivation, "Fig. 2: Horovod vs linear"),
        "fig9": (harness.fig9_cv_pytorch, "Fig. 9: PyTorch CV"),
        "fig10": (harness.fig10_nlp_pytorch, "Fig. 10: PyTorch NLP"),
        "fig11": (harness.fig11_tensorflow, "Fig. 11: TensorFlow"),
        "fig12": (harness.fig12_mxnet, "Fig. 12: MXNet"),
        "fig13": (harness.fig13_hybrid, "Fig. 13: hybrid parallelism"),
        "fig14": (harness.fig14_batchsize, "Fig. 14: batch size"),
        "fig15": (harness.fig15_rdma, "Fig. 15: RDMA"),
        "scaling": (harness.scaling_efficiency_summary,
                    "Scaling efficiency (§VIII-A)"),
        "ctr": (harness.ctr_production, "CTR production (§VIII-C)"),
        "dawnbench": (harness.dawnbench, "DAWNBench (§VIII-C)"),
        "autotune": (harness.autotune_parameters,
                     "Auto-tuned parameters (§VIII-D)"),
        "bandwidth": (harness.bandwidth_utilization,
                      "TCP utilisation (§III)"),
        "congested": (harness.congested_algorithm_choice,
                      "Algorithm choice under congestion (§V-B)"),
        "insightface": (harness.insightface_speedup,
                        "InsightFace face recognition (§VIII-C)"),
        "futuregpu": (harness.future_gpu_whatif,
                      "Future-GPU what-if (§VIII-A)"),
    }
    names = list(runners) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner, title = runners[name]
        rows = runner()
        table = format_table(rows, title=title)
        save_report(name, table)
        print(table)
        if name in charts:
            label_key, value_keys = charts[name]
            print()
            print(ascii_chart(rows, label_key, value_keys))
        print()
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    from repro.autotune import AutoTuner, make_evaluator
    from repro.harness import format_table

    tuner = AutoTuner(budget=args.budget, seed=args.seed)
    result = tuner.tune(make_evaluator(args.model, args.gpus))
    best = result.best_point
    print(f"best setting for {args.model} on {args.gpus} GPUs:")
    print(f"  streams:     {best.num_streams}")
    print(f"  granularity: {best.granularity_bytes / 1e6:.0f} MB")
    print(f"  algorithm:   {best.algorithm}")
    print(f"  iteration:   {result.best_cost_s * 1e3:.2f} ms")
    usage = [{"technique": name, "iterations": count}
             for name, count in sorted(result.technique_usage.items())]
    print(format_table(usage, title="warm-up budget allocation"))
    return 0


def cmd_translate(args: argparse.Namespace) -> int:
    from repro.core.translator import (
        translate_horovod_source,
        translate_sequential_source,
    )

    source = args.script.read_text()
    if args.mode == "horovod":
        out = translate_horovod_source(source)
    else:
        out = translate_sequential_source(source,
                                          num_workers=args.workers)
    if args.output is not None:
        args.output.write_text(out)
        print(f"wrote {args.output}")
    else:
        print(out)
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import json

    from repro.errors import TrainingError
    from repro.sim.faults import FaultPlan, NodeCrash
    from repro.training.resilience import (
        run_fault_injected_training,
        simulate_resilient_training,
    )
    from repro.training.trainer import run_training

    num_nodes = args.gpus // 8
    if args.gpus % 8 != 0 or num_nodes < 2:
        raise TrainingError("--gpus must be a multiple of 8 and >= 16")

    # A quick healthy measurement fixes the iteration time, which anchors
    # both the default crash schedule and the analytical comparison.
    baseline = run_training(args.model, "aiacc", args.gpus,
                            measure_iterations=2, warmup_iterations=1)
    iter_s = baseline.mean_iteration_s
    horizon = args.iterations * iter_s

    if args.mtbf is not None:
        drawn = FaultPlan.poisson(args.mtbf, horizon, num_nodes,
                                  seed=args.seed)
        crashes = [f for f in drawn
                   if isinstance(f, NodeCrash)][:num_nodes - 1]
        plan = FaultPlan(crashes)
    else:
        nodes = args.crash_node if args.crash_node is not None else [1]
        if args.crash_at is not None:
            if len(args.crash_at) != len(nodes):
                raise TrainingError(
                    "--crash-at must be given once per --crash-node")
            times = args.crash_at
        else:
            # Spread defaults over the run, starting a quarter in.
            times = [horizon * (0.25 + 0.5 * i / max(1, len(nodes)))
                     for i in range(len(nodes))]
        plan = FaultPlan([NodeCrash(at_s=when, node=node)
                          for node, when in zip(nodes, times)])

    result = run_fault_injected_training(
        args.model, plan, num_gpus=args.gpus,
        total_iterations=args.iterations,
        checkpoint_interval=args.checkpoint_interval,
        sync_timeout_s=args.sync_timeout,
        unit_timeout_s=args.unit_timeout,
        comm_retries=args.retries,
        check_invariants=args.check_invariants,
    )

    print(f"model:               {result.model}")
    print(f"workers:             {result.initial_num_gpus} -> "
          f"{result.final_num_gpus} GPUs")
    print(f"iterations:          {result.total_iterations} "
          f"(+{result.wasted_iterations} lost to failures)")
    print(f"injected crashes:    {plan.crash_count}")
    print(f"total time:          {result.total_time_s:.1f} s simulated")
    print(f"goodput:             {result.goodput:.3f}")
    for index, rec in enumerate(result.recoveries):
        print(f"recovery {index}:          node(s) {list(rec.failed_nodes)} "
              f"died at t={rec.injected_at_s:.1f}s; detected in "
              f"{rec.detection_latency_s:.2f}s; rebuilt in "
              f"{rec.rebuild_time_s:.1f}s; lost {rec.lost_iterations} "
              f"iteration(s)")

    failure_at = sorted({min(int(rec.injected_at_s // iter_s),
                             args.iterations - 1)
                         for rec in result.recoveries})
    if failure_at:
        analytical = simulate_resilient_training(
            args.model, iter_s, args.iterations, args.checkpoint_interval,
            failure_at=failure_at)
        print(f"analytical goodput:  {analytical.goodput:.3f} "
              f"(simulate_resilient_training)")

    fault_counters = {name: value
                      for name, value in sorted(result.trace.counters.items())
                      if name.startswith("aiacc.faults.")}
    for name, value in fault_counters.items():
        print(f"{name}: {value:g}")

    if result.state_digest is not None:
        print(f"invariants:          ok (state digest "
              f"{result.state_digest})")

    if args.trace_out is not None:
        args.trace_out.write_text(
            json.dumps(result.trace.to_chrome_trace()))
        print(f"wrote {args.trace_out}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.harness.chaos import run_chaos_soak

    seeds = range(args.seed_base, args.seed_base + args.seeds)
    report = run_chaos_soak(
        seeds, replays=args.replays, jsonl_path=args.jsonl,
        num_gpus=args.gpus, gpus_per_node=args.gpus_per_node,
        total_iterations=args.iterations,
        horizon_s=args.horizon, mtbf_s=args.mtbf)

    print(f"seeds:           {args.seeds} "
          f"({seeds.start}..{seeds.stop - 1}), "
          f"{args.replays} replay(s) each")
    print(f"completed:       {report.completed}")
    print(f"clean failures:  {report.clean_failures}")
    for kind, count in sorted(report.failure_kinds.items()):
        print(f"  {kind}: {count}")
    print()
    for outcome in report.outcomes:
        if outcome.completed:
            detail = (f"world {outcome.final_world} epoch "
                      f"{outcome.final_epoch} transitions "
                      f"{outcome.epoch_transitions} recoveries "
                      f"{outcome.recoveries} t={outcome.total_time_s:.2f}s")
        else:
            detail = f"{outcome.status}: {outcome.error}"
        print(f"seed {outcome.seed:>3}  "
              f"[{outcome.outcome_digest()[:12]}]  {detail}")
    if args.jsonl is not None:
        print(f"\nwrote {args.jsonl}")
    # Typed clean failures are expected chaos outcomes; only a harness
    # error (ReproError from run_chaos_soak itself) exits non-zero, via
    # the ReproError handler in main().
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.core.runtime import AIACCConfig
    from repro.harness import format_table
    from repro.obs import write_artifacts
    from repro.obs.report import build_step_report

    overrides: dict[str, t.Any] = {}
    if args.streams is not None:
        overrides["num_streams"] = args.streams
    if args.granularity_mb is not None:
        overrides["granularity_bytes"] = args.granularity_mb * 1e6
    config = AIACCConfig(**overrides)

    report = build_step_report(
        model=args.model, num_nodes=args.nodes,
        gpus_per_node=args.gpus_per_node, config=config, seed=args.seed)

    print(f"model:          {report.model}")
    print(f"workers:        {report.world_size} "
          f"({args.nodes} nodes x {args.gpus_per_node} GPUs)")
    print(f"iteration time: {report.iteration_time_s * 1e3:.2f} ms")
    print()
    rows = [a.as_row() for a in report.attributions]
    print(format_table(rows, title="step-time attribution (per rank)"))
    print(f"conservation:   components sum to step time within "
          f"{report.max_conservation_error:.2e} relative error")
    print()
    if report.stream_rows:
        print(format_table(list(report.stream_rows),
                           title="CUDA stream lanes"))
        print()
    if report.link_rows:
        print(format_table(list(report.link_rows),
                           title="per-stream link utilisation"))
        print()
    written = write_artifacts(args.out, report.obs.registry,
                              report.obs.timeline)
    for name, path in sorted(written.items()):
        print(f"wrote {name}: {path}")
    return 0


def main(argv: t.Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "check_invariants", False):
        # The environment flag is how every simulator and AIACCConfig
        # constructed downstream picks the checker up, without threading
        # the option through each command's call graph.
        import os

        from repro.sim.invariants import ENV_FLAG

        os.environ[ENV_FLAG] = "1"
    handlers = {
        "table1": cmd_table1,
        "train": cmd_train,
        "bench": cmd_bench,
        "tune": cmd_tune,
        "translate": cmd_translate,
        "faults": cmd_faults,
        "chaos": cmd_chaos,
        "report": cmd_report,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
