"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``
    Print the paper's Table I from the model registry.
``train``
    Measure one training deployment (model x backend x GPUs).
``bench``
    Run a named paper experiment and print its table.
``tune``
    Run the Section VI auto-tuner on a deployment.
``translate``
    Port a Horovod or sequential training script to the Perseus API.
``faults``
    Inject node crashes into a simulated run and report the measured
    recovery trajectory (detection latency, rebuild time, goodput).
``chaos``
    Soak the elastic runtime under random schedules mixing crashes,
    flaps, stragglers, clean leaves and joins: every seed must
    terminate (complete or typed clean failure) with a deterministic
    outcome digest across replays.
``report``
    Run one fully-instrumented iteration and emit the observability
    report: per-rank step-time attribution, per-stream lane usage,
    per-link utilisation, plus Perfetto/Prometheus/JSONL artifacts.
    With ``--from-campaign`` it instead renders a campaign's durable
    results store.
``campaign``
    Crash-safe experiment campaigns over a durable SQLite results
    store: ``submit`` a parameter grid, ``run`` it across a process
    pool, ``status`` it, ``resume`` an interrupted campaign (workers or
    the orchestrator may be killed at any instant), ``report`` the
    recorded results with a resume-invariant digest, and ``diff`` two
    stores cell by cell (non-zero exit on divergence).
``cluster``
    Multi-tenant shared fabric: run the committed 3-job contention
    scenario with admission control, job-tagged flows, per-job SLO
    sentinels and the staged degradation ladder; ``--check-isolation``
    verifies chaos on one tenant leaves the neighbors' numeric digests
    bit-identical, ``--check-replay`` verifies determinism, and
    ``--expect-digest`` pins the cluster digest (CI golden).
``diagnose``
    Self-diagnosing runtime: run the benchmark baseline scenario under
    streaming detectors, emit typed findings (markdown/JSONL/Perfetto
    annotations), and evaluate the declarative SLOs against the pinned
    ``BENCH_simulator.json`` baseline (or a campaign store).  Exits
    non-zero on an SLO breach (2) or on findings at/above ``--fail-on``
    (3); ``--from-artifacts``/``--from-campaign`` re-diagnose recorded
    runs instead of simulating.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import typing as t

from repro.errors import ReproError

#: Experiment name -> harness function (resolved lazily).
EXPERIMENTS = (
    "fig2", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "scaling", "ctr", "dawnbench", "autotune", "bandwidth", "congested",
    "planner", "insightface", "futuregpu",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AIACC-Training reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_check_invariants(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--check-invariants", action="store_true",
            help="run under the simulation-wide invariant checker "
            "(resource accounting, cross-worker agreement, replay "
            "digest); equivalent to REPRO_CHECK_INVARIANTS=1")

    sub.add_parser("table1", help="print Table I (model characteristics)")

    train = sub.add_parser("train", help="measure one deployment")
    train.add_argument("--model", default="resnet50")
    train.add_argument("--backend", default="aiacc",
                       help="aiacc|horovod|pytorch-ddp|byteps|mxnet-kvstore")
    train.add_argument("--gpus", type=int, default=32)
    train.add_argument("--batch", type=int, default=None)
    train.add_argument("--rdma", action="store_true",
                       help="use the RDMA transport (100 Gbps)")
    train.add_argument("--streams", type=int, default=None,
                       help="AIACC stream count (default: tuned heuristic)")
    train.add_argument("--granularity-mb", type=float, default=None,
                       help="AIACC unit granularity in MB")
    add_check_invariants(train)

    bench = sub.add_parser("bench", help="run a paper experiment")
    bench.add_argument("experiment", choices=EXPERIMENTS + ("all",))
    add_check_invariants(bench)

    tune = sub.add_parser("tune", help="run the §VI auto-tuner")
    tune.add_argument("--model", default="resnet50")
    tune.add_argument("--gpus", type=int, default=64)
    tune.add_argument("--budget", type=int, default=40)
    tune.add_argument("--seed", type=int, default=0)
    add_check_invariants(tune)

    translate = sub.add_parser("translate",
                               help="port a script to the Perseus API")
    translate.add_argument("script", type=pathlib.Path)
    translate.add_argument("--mode", choices=("horovod", "sequential"),
                           default="horovod")
    translate.add_argument("--workers", type=int, default=8)
    translate.add_argument("--output", type=pathlib.Path, default=None,
                           help="write here instead of stdout")

    faults = sub.add_parser(
        "faults", help="fault-injected training with self-healing recovery")
    faults.add_argument("--model", default="resnet50")
    faults.add_argument("--gpus", type=int, default=16)
    faults.add_argument("--iterations", type=int, default=20)
    faults.add_argument("--checkpoint-interval", type=int, default=5)
    faults.add_argument("--crash-node", type=int, action="append",
                        default=None,
                        help="node index to crash (repeatable; "
                        "default: node 1)")
    faults.add_argument("--crash-at", type=float, action="append",
                        default=None,
                        help="injection time in simulated seconds for the "
                        "matching --crash-node (default: 25%% of the run)")
    faults.add_argument("--mtbf", type=float, default=None,
                        help="draw a Poisson crash schedule with this mean "
                        "time between failures instead of --crash-node")
    faults.add_argument("--seed", type=int, default=0,
                        help="random seed for the --mtbf schedule")
    faults.add_argument("--sync-timeout", type=float, default=1.0)
    faults.add_argument("--unit-timeout", type=float, default=2.0)
    faults.add_argument("--retries", type=int, default=1)
    faults.add_argument("--trace-out", type=pathlib.Path, default=None,
                        help="write a Chrome trace JSON of the run")
    add_check_invariants(faults)

    chaos = sub.add_parser(
        "chaos", help="chaos soak: random crash/leave/join schedules")
    chaos.add_argument("--seeds", type=int, default=20,
                       help="number of random schedules (seeds 0..N-1)")
    chaos.add_argument("--seed-base", type=int, default=0,
                       help="first seed of the sweep")
    chaos.add_argument("--replays", type=int, default=2,
                       help="replays per seed; outcome digests must match")
    chaos.add_argument("--gpus", type=int, default=8)
    chaos.add_argument("--gpus-per-node", type=int, default=2)
    chaos.add_argument("--iterations", type=int, default=12)
    chaos.add_argument("--mtbf", type=float, default=0.35,
                       help="mean seconds between scheduled faults")
    chaos.add_argument("--horizon", type=float, default=2.5,
                       help="fault schedule horizon in simulated seconds")
    chaos.add_argument("--jsonl", type=pathlib.Path, default=None,
                       help="write the per-seed recovery/epoch timeline "
                       "here (JSONL)")

    report = sub.add_parser(
        "report", help="step-time attribution report with trace artifacts")
    report.add_argument("--model", default="resnet50")
    report.add_argument("--nodes", type=int, default=2)
    report.add_argument("--gpus-per-node", type=int, default=2)
    report.add_argument("--streams", type=int, default=None,
                        help="AIACC stream count (default: config default)")
    report.add_argument("--granularity-mb", type=float, default=None,
                        help="AIACC unit granularity in MB")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("results/report"),
                        help="directory for trace.json / timeline.jsonl / "
                        "metrics.prom")
    report.add_argument("--from-campaign", type=pathlib.Path, default=None,
                        metavar="STORE",
                        help="render a campaign results store instead of "
                        "running a simulation (typed error on a missing "
                        "or corrupt store)")
    report.add_argument("--campaign-id", type=int, default=None,
                        help="campaign id inside --from-campaign "
                        "(default: the latest)")

    campaign = sub.add_parser(
        "campaign",
        help="crash-safe experiment campaigns over a durable store")
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    def add_store(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--store", type=pathlib.Path,
                         default=pathlib.Path("results/campaigns.db"),
                         help="SQLite results store "
                         "(default: results/campaigns.db)")

    def add_runner_options(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--workers", type=int, default=2,
                         help="process-pool size")
        cmd.add_argument("--lease", type=float, default=10.0,
                         help="claim lease seconds; an expired lease "
                         "marks the claimant dead and re-queues the run")
        cmd.add_argument("--max-attempts", type=int, default=4)
        cmd.add_argument("--backoff", type=float, default=0.5,
                         help="base retry backoff seconds (doubles per "
                         "attempt, capped)")
        cmd.add_argument("--max-wall-s", type=float, default=None,
                         help="abort (resumably) past this wall-clock "
                         "budget")

    submit = campaign_sub.add_parser(
        "submit", help="expand a grid into pending runs")
    add_store(submit)
    submit.add_argument("--grid", default="smoke",
                        help="named grid (figures|smoke|chaos) or a JSON "
                        "grid file path")
    submit.add_argument("--name", default=None,
                        help="campaign name (default: the grid name)")

    run_cmd = campaign_sub.add_parser(
        "run", help="run a campaign to completion (submits --grid first "
        "unless --id is given)")
    add_store(run_cmd)
    run_cmd.add_argument("--id", type=int, default=None,
                         help="existing campaign id to run")
    run_cmd.add_argument("--grid", default=None,
                         help="submit this grid, then run it")
    run_cmd.add_argument("--name", default=None)
    add_runner_options(run_cmd)

    resume = campaign_sub.add_parser(
        "resume", help="resume an interrupted campaign exactly-once")
    resume.add_argument("id", type=int)
    add_store(resume)
    add_runner_options(resume)

    status = campaign_sub.add_parser(
        "status", help="run-state counts per campaign")
    add_store(status)
    status.add_argument("--id", type=int, default=None)

    creport = campaign_sub.add_parser(
        "report", help="render recorded results + resume-invariant digest")
    add_store(creport)
    creport.add_argument("--id", type=int, default=None,
                         help="campaign id (default: the latest)")
    creport.add_argument("--out", type=pathlib.Path, default=None,
                         help="also write summary.md / runs.jsonl / "
                         "metrics.prom here")

    cdiff = campaign_sub.add_parser(
        "diff", help="cell-by-cell comparison of two campaign stores "
        "(exit 1 on divergence)")
    cdiff.add_argument("store_a", type=pathlib.Path,
                       help="first campaign store")
    cdiff.add_argument("store_b", type=pathlib.Path,
                       help="second campaign store")
    cdiff.add_argument("--id-a", type=int, default=None,
                       help="campaign id inside store_a (default: latest)")
    cdiff.add_argument("--id-b", type=int, default=None,
                       help="campaign id inside store_b (default: latest)")

    cluster = sub.add_parser(
        "cluster",
        help="multi-tenant shared-fabric run: admission control, "
        "per-job SLOs, graceful degradation, isolation")
    cluster.add_argument("--no-chaos", action="store_true",
                         help="run the 3-job scenario without chaos on "
                         "tenant A")
    cluster.add_argument("--check-isolation", action="store_true",
                         help="run with and without chaos and verify the "
                         "neighbors' numeric digests are bit-identical "
                         "(exit 1 on violation)")
    cluster.add_argument("--check-replay", action="store_true",
                         help="run the schedule twice and verify the "
                         "cluster digests match (exit 1 on divergence)")
    cluster.add_argument("--expect-digest", default=None, metavar="HEX",
                         help="fail (exit 1) unless the cluster digest "
                         "matches this pinned value")
    cluster.add_argument("--json", type=pathlib.Path, default=None,
                         help="also write the full result as JSON here")

    diagnose = sub.add_parser(
        "diagnose",
        help="run + diagnose: streaming detectors, typed findings, "
        "SLO regression sentinel")
    diagnose.add_argument("--baseline", type=pathlib.Path,
                          default=pathlib.Path("BENCH_simulator.json"),
                          help="benchmark baseline file "
                          "(default: BENCH_simulator.json)")
    diagnose.add_argument("--scenario", default=None,
                          help="benchmark scenario to measure against "
                          "(default: step-8r-4s)")
    diagnose.add_argument("--baseline-label", default=None,
                          help="benchmark capture label "
                          "(default: the latest entry)")
    diagnose.add_argument("--baseline-campaign", type=pathlib.Path,
                          default=None, metavar="STORE",
                          help="baseline from a campaign store's best "
                          "completed cell instead of --baseline")
    diagnose.add_argument("--iterations", type=int, default=3,
                          help="measured iterations after one warm "
                          "iteration (default: 3)")
    diagnose.add_argument("--slo", type=pathlib.Path, default=None,
                          help="JSON SLO file (default: the stock SLOs)")
    diagnose.add_argument("--out", type=pathlib.Path,
                          default=pathlib.Path("results/diagnosis"),
                          help="directory for findings.md / "
                          "findings.jsonl / measurements.json + trace "
                          "artifacts")
    diagnose.add_argument("--from-artifacts", type=pathlib.Path,
                          default=None, metavar="DIR",
                          help="re-diagnose a recorded run from its "
                          "timeline.jsonl instead of simulating")
    diagnose.add_argument("--from-campaign", type=pathlib.Path,
                          default=None, metavar="STORE",
                          help="re-diagnose a campaign store's recorded "
                          "cells (findings persisted by cells with "
                          "'diagnose': true)")
    diagnose.add_argument("--campaign-id", type=int, default=None,
                          help="campaign id inside --from-campaign "
                          "(default: the latest)")
    diagnose.add_argument("--fail-on", default="warn",
                          help="exit 3 when any finding reaches this "
                          "severity: info|warn|error|critical "
                          "(default: warn)")
    diagnose.add_argument("--per-rank", action="store_true",
                          help="diagnose one message-level per-rank "
                          "iteration (supports straggler injection) "
                          "instead of the benchmark scenario")
    diagnose.add_argument("--model", default="resnet50",
                          help="model for --per-rank mode")
    diagnose.add_argument("--straggler-rank", type=int, default=None,
                          help="with --per-rank: slow this rank's "
                          "compute down")
    diagnose.add_argument("--straggler-factor", type=float, default=3.0,
                          help="compute slowdown factor for "
                          "--straggler-rank (default: 3.0)")
    add_check_invariants(diagnose)

    return parser


# -- command implementations ---------------------------------------------------

def cmd_table1(_args: argparse.Namespace) -> int:
    from repro.harness import format_table
    from repro.models import table1

    print(format_table(table1(), title="Table I: DNN model characteristics"))
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from repro.frameworks import make_backend
    from repro.harness import tuned_aiacc_config
    from repro.sim.rdma import RDMA, RDMA_DEFAULT_BANDWIDTH_BPS
    from repro.sim.tcp import TCP
    from repro.training.trainer import run_training

    transport = RDMA if args.rdma else TCP
    nic = RDMA_DEFAULT_BANDWIDTH_BPS if args.rdma else 30e9
    backend: t.Any = args.backend
    if args.backend == "aiacc":
        config = tuned_aiacc_config(args.model, args.gpus)
        overrides: dict[str, t.Any] = {}
        if args.streams is not None:
            overrides["num_streams"] = args.streams
        if args.granularity_mb is not None:
            overrides["granularity_bytes"] = args.granularity_mb * 1e6
        if overrides:
            config = config.replace(**overrides)
        backend = make_backend("aiacc", config=config)
    result = run_training(args.model, backend, args.gpus,
                          batch_per_gpu=args.batch,
                          transport=transport, nic_bandwidth_bps=nic)
    print(f"model:              {result.model}")
    print(f"backend:            {result.backend}")
    print(f"GPUs:               {result.num_gpus}")
    print(f"batch/GPU:          {result.batch_per_gpu}")
    print(f"iteration time:     {result.mean_iteration_s * 1e3:.2f} ms")
    print(f"throughput:         {result.throughput:,.0f} "
          f"{result.sample_unit}/s")
    print(f"scaling efficiency: {result.scaling_efficiency:.3f}")
    print(f"exposed comm:       {result.exposed_comm_s * 1e3:.2f} ms/iter")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro import harness
    from repro.harness import ascii_chart, format_table, save_report

    #: Optional bar-chart rendering: name -> (label_key, value_keys).
    charts: dict[str, tuple[str, list[str]]] = {
        "fig2": ("gpus", ["horovod_throughput", "linear_throughput"]),
        "fig13": ("gpus", ["aiacc", "mxnet-kvstore"]),
        "fig14": ("batch_per_gpu", ["speedup"]),
        "fig15": ("model", ["speedup"]),
        "bandwidth": ("streams", ["utilization"]),
        "congested": ("scenario", ["hierarchical_speedup"]),
        "planner": ("scenario", ["ring_ms", "hierarchical_ms", "ina_ms"]),
    }

    runners: dict[str, tuple[t.Callable[[], list], str]] = {
        "fig2": (harness.fig2_motivation, "Fig. 2: Horovod vs linear"),
        "fig9": (harness.fig9_cv_pytorch, "Fig. 9: PyTorch CV"),
        "fig10": (harness.fig10_nlp_pytorch, "Fig. 10: PyTorch NLP"),
        "fig11": (harness.fig11_tensorflow, "Fig. 11: TensorFlow"),
        "fig12": (harness.fig12_mxnet, "Fig. 12: MXNet"),
        "fig13": (harness.fig13_hybrid, "Fig. 13: hybrid parallelism"),
        "fig14": (harness.fig14_batchsize, "Fig. 14: batch size"),
        "fig15": (harness.fig15_rdma, "Fig. 15: RDMA"),
        "scaling": (harness.scaling_efficiency_summary,
                    "Scaling efficiency (§VIII-A)"),
        "ctr": (harness.ctr_production, "CTR production (§VIII-C)"),
        "dawnbench": (harness.dawnbench, "DAWNBench (§VIII-C)"),
        "autotune": (harness.autotune_parameters,
                     "Auto-tuned parameters (§VIII-D)"),
        "bandwidth": (harness.bandwidth_utilization,
                      "TCP utilisation (§III)"),
        "congested": (harness.congested_algorithm_choice,
                      "Algorithm choice under congestion (§V-B)"),
        "planner": (harness.planner_backend_sweep,
                    "Planner backends vs spine oversubscription (§V)"),
        "insightface": (harness.insightface_speedup,
                        "InsightFace face recognition (§VIII-C)"),
        "futuregpu": (harness.future_gpu_whatif,
                      "Future-GPU what-if (§VIII-A)"),
    }
    names = list(runners) if args.experiment == "all" else [args.experiment]
    for name in names:
        runner, title = runners[name]
        rows = runner()
        table = format_table(rows, title=title)
        save_report(name, table)
        print(table)
        if name in charts:
            label_key, value_keys = charts[name]
            print()
            print(ascii_chart(rows, label_key, value_keys))
        print()
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    from repro.autotune import AutoTuner, make_evaluator
    from repro.harness import format_table

    tuner = AutoTuner(budget=args.budget, seed=args.seed)
    result = tuner.tune(make_evaluator(args.model, args.gpus))
    best = result.best_point
    print(f"best setting for {args.model} on {args.gpus} GPUs:")
    print(f"  streams:     {best.num_streams}")
    print(f"  granularity: {best.granularity_bytes / 1e6:.0f} MB")
    print(f"  algorithm:   {best.algorithm}")
    print(f"  iteration:   {result.best_cost_s * 1e3:.2f} ms")
    usage = [{"technique": name, "iterations": count}
             for name, count in sorted(result.technique_usage.items())]
    print(format_table(usage, title="warm-up budget allocation"))
    return 0


def cmd_translate(args: argparse.Namespace) -> int:
    from repro.core.translator import (
        translate_horovod_source,
        translate_sequential_source,
    )

    source = args.script.read_text()
    if args.mode == "horovod":
        out = translate_horovod_source(source)
    else:
        out = translate_sequential_source(source,
                                          num_workers=args.workers)
    if args.output is not None:
        args.output.write_text(out)
        print(f"wrote {args.output}")
    else:
        print(out)
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import json

    from repro.errors import TrainingError
    from repro.sim.faults import FaultPlan, NodeCrash
    from repro.training.resilience import (
        run_fault_injected_training,
        simulate_resilient_training,
    )
    from repro.training.trainer import run_training

    num_nodes = args.gpus // 8
    if args.gpus % 8 != 0 or num_nodes < 2:
        raise TrainingError("--gpus must be a multiple of 8 and >= 16")

    # A quick healthy measurement fixes the iteration time, which anchors
    # both the default crash schedule and the analytical comparison.
    baseline = run_training(args.model, "aiacc", args.gpus,
                            measure_iterations=2, warmup_iterations=1)
    iter_s = baseline.mean_iteration_s
    horizon = args.iterations * iter_s

    if args.mtbf is not None:
        drawn = FaultPlan.poisson(args.mtbf, horizon, num_nodes,
                                  seed=args.seed)
        crashes = [f for f in drawn
                   if isinstance(f, NodeCrash)][:num_nodes - 1]
        plan = FaultPlan(crashes)
    else:
        nodes = args.crash_node if args.crash_node is not None else [1]
        if args.crash_at is not None:
            if len(args.crash_at) != len(nodes):
                raise TrainingError(
                    "--crash-at must be given once per --crash-node")
            times = args.crash_at
        else:
            # Spread defaults over the run, starting a quarter in.
            times = [horizon * (0.25 + 0.5 * i / max(1, len(nodes)))
                     for i in range(len(nodes))]
        plan = FaultPlan([NodeCrash(at_s=when, node=node)
                          for node, when in zip(nodes, times)])

    result = run_fault_injected_training(
        args.model, plan, num_gpus=args.gpus,
        total_iterations=args.iterations,
        checkpoint_interval=args.checkpoint_interval,
        sync_timeout_s=args.sync_timeout,
        unit_timeout_s=args.unit_timeout,
        comm_retries=args.retries,
        check_invariants=args.check_invariants,
    )

    print(f"model:               {result.model}")
    print(f"workers:             {result.initial_num_gpus} -> "
          f"{result.final_num_gpus} GPUs")
    print(f"iterations:          {result.total_iterations} "
          f"(+{result.wasted_iterations} lost to failures)")
    print(f"injected crashes:    {plan.crash_count}")
    print(f"total time:          {result.total_time_s:.1f} s simulated")
    print(f"goodput:             {result.goodput:.3f}")
    for index, rec in enumerate(result.recoveries):
        print(f"recovery {index}:          node(s) {list(rec.failed_nodes)} "
              f"died at t={rec.injected_at_s:.1f}s; detected in "
              f"{rec.detection_latency_s:.2f}s; rebuilt in "
              f"{rec.rebuild_time_s:.1f}s; lost {rec.lost_iterations} "
              f"iteration(s)")

    failure_at = sorted({min(int(rec.injected_at_s // iter_s),
                             args.iterations - 1)
                         for rec in result.recoveries})
    if failure_at:
        analytical = simulate_resilient_training(
            args.model, iter_s, args.iterations, args.checkpoint_interval,
            failure_at=failure_at)
        print(f"analytical goodput:  {analytical.goodput:.3f} "
              f"(simulate_resilient_training)")

    fault_counters = {name: value
                      for name, value in sorted(result.trace.counters.items())
                      if name.startswith("aiacc.faults.")}
    for name, value in fault_counters.items():
        print(f"{name}: {value:g}")

    if result.state_digest is not None:
        print(f"invariants:          ok (state digest "
              f"{result.state_digest})")

    if args.trace_out is not None:
        from repro.ioutil import atomic_write_text

        atomic_write_text(args.trace_out,
                          json.dumps(result.trace.to_chrome_trace()))
        print(f"wrote {args.trace_out}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.harness.chaos import run_chaos_soak

    seeds = range(args.seed_base, args.seed_base + args.seeds)
    report = run_chaos_soak(
        seeds, replays=args.replays, jsonl_path=args.jsonl,
        num_gpus=args.gpus, gpus_per_node=args.gpus_per_node,
        total_iterations=args.iterations,
        horizon_s=args.horizon, mtbf_s=args.mtbf)

    print(f"seeds:           {args.seeds} "
          f"({seeds.start}..{seeds.stop - 1}), "
          f"{args.replays} replay(s) each")
    print(f"completed:       {report.completed}")
    print(f"clean failures:  {report.clean_failures}")
    for kind, count in sorted(report.failure_kinds.items()):
        print(f"  {kind}: {count}")
    print()
    for outcome in report.outcomes:
        if outcome.completed:
            detail = (f"world {outcome.final_world} epoch "
                      f"{outcome.final_epoch} transitions "
                      f"{outcome.epoch_transitions} recoveries "
                      f"{outcome.recoveries} t={outcome.total_time_s:.2f}s")
        else:
            detail = f"{outcome.status}: {outcome.error}"
        print(f"seed {outcome.seed:>3}  "
              f"[{outcome.outcome_digest()[:12]}]  {detail}")
    if args.jsonl is not None:
        print(f"\nwrote {args.jsonl}")
    # Typed clean failures are expected chaos outcomes; only a harness
    # error (ReproError from run_chaos_soak itself) exits non-zero, via
    # the ReproError handler in main().
    return 0


def _campaign_grids(grid_arg: str) -> tuple[str, list]:
    """Resolve --grid: a named grid or a JSON grid-list file path."""
    from repro.campaign.grid import NAMED_GRIDS, grids_from_payload, \
        named_grids
    from repro.errors import CampaignError

    if grid_arg in NAMED_GRIDS:
        return grid_arg, named_grids(grid_arg)
    path = pathlib.Path(grid_arg)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CampaignError(
            f"--grid {grid_arg!r} is neither a named grid "
            f"({', '.join(sorted(NAMED_GRIDS))}) nor a readable JSON "
            f"file: {exc}") from exc
    return path.stem, grids_from_payload(text)


def _print_campaign_report(report: t.Any,
                           out: pathlib.Path | None) -> None:
    from repro.campaign.report import render_report, write_report_artifacts

    # Artifacts first: a consumer truncating stdout (head, a dropped
    # pipe) must not cost the durable files.
    written = {} if out is None else write_report_artifacts(out, report)
    print(render_report(report))
    for name, path in sorted(written.items()):
        print(f"wrote {name}: {path}")


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign.policy import RetryPolicy
    from repro.campaign.report import load_report, load_report_from_path
    from repro.campaign.runner import CampaignRunner, submit_campaign
    from repro.campaign.store import CampaignStore, open_store_readonly

    def make_runner(campaign_id: int) -> CampaignRunner:
        policy = RetryPolicy(max_attempts=args.max_attempts,
                             base_backoff_s=args.backoff)
        return CampaignRunner(args.store, campaign_id,
                              max_workers=args.workers,
                              lease_s=args.lease, policy=policy)

    def run_to_completion(campaign_id: int) -> int:
        last: dict[str, int] = {}

        def progress(counts: dict[str, int]) -> None:
            nonlocal last
            if counts != last:
                last = counts
                states = " ".join(f"{state}={count}"
                                  for state, count in counts.items()
                                  if count)
                print(f"campaign {campaign_id}: {states}")

        counts = make_runner(campaign_id).run(
            progress=progress, max_wall_s=args.max_wall_s)
        with open_store_readonly(args.store) as store:
            report = load_report(store, campaign_id)
        print(f"report digest: {report.digest()}")
        incomplete = counts["pending"] + counts["claimed"] + \
            counts["running"]
        return 0 if incomplete == 0 else 1

    if args.campaign_command == "submit":
        name, grids = _campaign_grids(args.grid)
        with CampaignStore(args.store) as store:
            campaign_id = submit_campaign(store, grids,
                                          name=args.name or name)
            total = store.counts(campaign_id)["pending"]
        print(f"campaign {campaign_id}: {total} runs pending in "
              f"{args.store}")
        print(f"run it with: python -m repro campaign run "
              f"--store {args.store} --id {campaign_id}")
        return 0

    if args.campaign_command == "run":
        if (args.id is None) == (args.grid is None):
            from repro.errors import CampaignError

            raise CampaignError(
                "campaign run needs exactly one of --id or --grid")
        if args.id is not None:
            campaign_id = args.id
        else:
            name, grids = _campaign_grids(args.grid)
            with CampaignStore(args.store) as store:
                campaign_id = submit_campaign(store, grids,
                                              name=args.name or name)
            print(f"campaign {campaign_id}: submitted grid "
                  f"{args.grid!r}")
        return run_to_completion(campaign_id)

    if args.campaign_command == "resume":
        return run_to_completion(args.id)

    if args.campaign_command == "status":
        with open_store_readonly(args.store) as store:
            campaigns = store.campaigns()
            if args.id is not None:
                campaigns = [c for c in campaigns if c.id == args.id]
            for info in campaigns:
                counts = store.counts(info.id)
                states = " ".join(f"{state}={count}"
                                  for state, count in counts.items())
                print(f"campaign {info.id} ({info.name}): {states}")
        if not campaigns:
            print("no campaigns recorded")
        return 0

    if args.campaign_command == "diff":
        from repro.campaign.report import diff_reports

        report_a = load_report_from_path(args.store_a, args.id_a)
        report_b = load_report_from_path(args.store_b, args.id_b)
        diffs = diff_reports(report_a, report_b)
        print(f"A: campaign {report_a.campaign_id} ({report_a.name}), "
              f"digest {report_a.digest()}")
        print(f"B: campaign {report_b.campaign_id} ({report_b.name}), "
              f"digest {report_b.digest()}")
        if not diffs:
            print("stores agree: every cell's terminal outcome matches")
            return 0
        print(f"{len(diffs)} divergent cell(s):")
        for diff in diffs:
            print(f"  {diff.render()}")
        return 1

    assert args.campaign_command == "report"
    report = load_report_from_path(args.store, args.id)
    _print_campaign_report(report, args.out)
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    from repro.cluster import three_job_scenario
    from repro.harness import format_table
    from repro.ioutil import atomic_write_text

    def run(chaos: bool) -> t.Any:
        return three_job_scenario(chaos=chaos).run()

    result = run(chaos=not args.no_chaos)
    rows = []
    for job_id, rec in result.jobs.items():
        rows.append({
            "job": job_id, "status": rec["status"],
            "steps": rec["steps_done"], "streams": rec["streams"],
            "ladder": rec["ladder_stage"],
            "transitions": ",".join(
                str(tr["kind"]) for tr in
                t.cast(list, rec["transitions"])) or "-",
            "digest": (rec["numeric_digest"] or "-")[:12],
        })
    print(format_table(rows, title="tenants"))
    print()
    if result.findings:
        print(f"{len(result.findings)} finding(s):")
        for finding in result.findings:
            print(f"  [{finding.severity.name}] {finding.kind} "
                  f"{finding.subject}: {finding.message}")
    else:
        print("no findings: every tenant inside its SLO")
    print(f"findings digest: {result.findings_digest}")
    print(f"cluster digest:  {result.cluster_digest}")
    if args.json is not None:
        atomic_write_text(args.json, result.to_json())
        print(f"wrote {args.json}")
    failed = False
    if args.check_replay:
        replay = run(chaos=not args.no_chaos)
        if replay.cluster_digest == result.cluster_digest:
            print("replay check: digests match")
        else:
            print(f"replay check FAILED: {replay.cluster_digest} != "
                  f"{result.cluster_digest}", file=sys.stderr)
            failed = True
    if args.check_isolation:
        quiet = run(chaos=False)
        for job_id in sorted(result.jobs):
            with_chaos = result.job_digest(job_id)
            without = quiet.job_digest(job_id)
            verdict = "identical" if with_chaos == without else "DIVERGED"
            print(f"isolation {job_id}: {verdict}")
            if with_chaos != without:
                failed = True
    if args.expect_digest is not None \
            and result.cluster_digest != args.expect_digest:
        print(f"cluster digest {result.cluster_digest} does not match "
              f"expected {args.expect_digest}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.core.runtime import AIACCConfig
    from repro.harness import format_table
    from repro.obs import write_artifacts
    from repro.obs.report import build_step_report

    if args.from_campaign is not None:
        from repro.campaign.report import load_report_from_path

        report = load_report_from_path(args.from_campaign,
                                       args.campaign_id)
        _print_campaign_report(
            report, args.out if args.out != pathlib.Path("results/report")
            else None)
        return 0

    overrides: dict[str, t.Any] = {}
    if args.streams is not None:
        overrides["num_streams"] = args.streams
    if args.granularity_mb is not None:
        overrides["granularity_bytes"] = args.granularity_mb * 1e6
    config = AIACCConfig(**overrides)

    report = build_step_report(
        model=args.model, num_nodes=args.nodes,
        gpus_per_node=args.gpus_per_node, config=config, seed=args.seed)

    print(f"model:          {report.model}")
    print(f"workers:        {report.world_size} "
          f"({args.nodes} nodes x {args.gpus_per_node} GPUs)")
    print(f"iteration time: {report.iteration_time_s * 1e3:.2f} ms")
    print()
    rows = [a.as_row() for a in report.attributions]
    print(format_table(rows, title="step-time attribution (per rank)"))
    print(f"conservation:   components sum to step time within "
          f"{report.max_conservation_error:.2e} relative error")
    print()
    if report.stream_rows:
        print(format_table(list(report.stream_rows),
                           title="CUDA stream lanes"))
        print()
    if report.link_rows:
        print(format_table(list(report.link_rows),
                           title="per-stream link utilisation"))
        print()
    written = write_artifacts(args.out, report.obs.registry,
                              report.obs.timeline)
    for name, path in sorted(written.items()):
        print(f"wrote {name}: {path}")
    return 0


def _scenario_diagnosis(args: argparse.Namespace, baseline: t.Any
                        ) -> tuple[t.Any, t.Any, dict[str, float]]:
    """Run the baseline's benchmark scenario plain + instrumented.

    The plain (observability-disabled) run prices the instrumented one:
    ``obs_overhead_frac`` is the wall-clock factor between the best of
    two instrumented runs and the best of two plain runs, which the
    ``obs_overhead`` SLO then judges.  Returns the instrumented bundle,
    its diagnosis, and the run-level measurements.
    """
    import time

    from repro.frameworks.base import IterationStats
    from repro.obs import Observability, diagnose

    def build_and_run(obs: t.Any) -> tuple[float, float]:
        from repro.core.runtime import AIACCConfig
        from repro.frameworks import make_backend
        from repro.models.zoo import get_model
        from repro.training.trainer import build_train_context

        # The workload *is* the baseline's recorded scenario shape, so
        # the relative step-time SLO compares like with like (the same
        # full-link mode the benchmark suite pins).
        ranks = int(baseline.values.get("ranks", 8))
        streams = int(baseline.values.get("streams", 4))
        model = baseline.meta.get("model", "resnet50")
        algorithm = baseline.meta.get("algorithm", "ring")
        congested = baseline.meta.get("congested") == "true"
        config = AIACCConfig(num_streams=streams, algorithm=algorithm)
        backend = make_backend("aiacc", config=config)
        spec = get_model(model)
        congested_links = {0: 0.9} if congested else None
        ctx = build_train_context(
            spec, backend, ranks, spec.default_batch_size,
            congested_links=congested_links,
            representative=False if congested_links is None else None,
            obs=obs)
        warm = ctx.sim.spawn(backend.warmup(ctx), name="warmup")
        ctx.sim.run(until=warm)
        times = []
        for index in range(args.iterations + 1):
            proc = ctx.sim.spawn(backend.iteration(ctx),
                                 name=f"iter{index}")
            ctx.sim.run(until=proc)
            stats = t.cast(IterationStats, proc.value)
            if index >= 1:
                times.append(stats.iteration_time_s)
        return sum(times) / len(times), ctx.compute_time_s

    def timed(make_obs: t.Callable[[], t.Any]
              ) -> tuple[float, tuple[t.Any, float, float]]:
        best_wall = float("inf")
        kept = None
        for _ in range(2):
            obs = make_obs()
            start = time.perf_counter()
            mean, compute = build_and_run(obs)
            best_wall = min(best_wall, time.perf_counter() - start)
            if kept is None:
                kept = (obs, mean, compute)
        return best_wall, t.cast(tuple, kept)

    def instrumented() -> t.Any:
        obs = Observability(enabled=True)
        obs.attach_detectors()
        return obs

    plain_wall, _ = timed(Observability.disabled)
    inst_wall, (obs, mean_step_s, compute_s) = timed(instrumented)

    report = diagnose(obs)
    measurements = {
        "simulated_step_s": mean_step_s,
        "scaling_efficiency": compute_s / mean_step_s
        if mean_step_s > 0 else 0.0,
        "obs_overhead_frac": inst_wall / plain_wall
        if plain_wall > 0 else 1.0,
    }
    return obs, report, measurements


def _per_rank_diagnosis(args: argparse.Namespace) -> tuple[t.Any, t.Any]:
    """Diagnose one message-level per-rank iteration."""
    from repro.obs import Observability, diagnose
    from repro.obs.report import build_step_report

    obs = Observability(enabled=True)
    obs.attach_detectors()
    skew = None
    if args.straggler_rank is not None:
        skew = {args.straggler_rank: args.straggler_factor}
    step_report = build_step_report(model=args.model, obs=obs,
                                    compute_skew=skew)
    return obs, diagnose(obs, attributions=step_report.attributions)


def _campaign_diagnosis(store: pathlib.Path, campaign_id: int | None
                        ) -> tuple[t.Any, dict[str, float]]:
    """Aggregate the findings recorded by a campaign's diagnosed cells."""
    from repro.campaign.report import load_report_from_path
    from repro.obs import DiagnosisReport, Finding, parse_severity

    report = load_report_from_path(store, campaign_id)
    findings = []
    diagnosed = 0
    best: tuple[float, t.Any] | None = None
    for row in report.rows:
        if row.state != "done" or not isinstance(row.result, dict):
            continue
        value = row.result.get("mean_iteration_s")
        if isinstance(value, (int, float)) and not isinstance(value, bool) \
                and (best is None or float(value) < best[0]):
            best = (float(value), row)
        records = row.result.get("findings")
        if records is None:
            continue
        diagnosed += 1
        for rec in records:
            evidence = tuple(sorted(dict(rec.get("evidence", {})).items()))
            findings.append(Finding(
                severity=parse_severity(str(rec.get("severity", "WARN"))),
                component=str(rec.get("component", "runtime")),
                kind=str(rec.get("kind", "unknown")),
                subject=str(rec.get("subject", row.spec_id)),
                message=str(rec.get("message", "")),
                time_s=float(rec.get("time_s", 0.0)),
                evidence=evidence + (("spec_id", row.spec_id),)))
    findings.sort(key=lambda f: (-int(f.severity), f.component, f.kind,
                                 f.subject, f.time_s))
    print(f"campaign {report.campaign_id} ({report.name}): "
          f"{diagnosed} diagnosed cell(s)")
    measurements: dict[str, float] = {}
    if best is not None:
        efficiency = best[1].result.get("scaling_efficiency")
        if isinstance(efficiency, (int, float)):
            measurements["scaling_efficiency"] = float(efficiency)
    return DiagnosisReport(findings=tuple(findings)), measurements


def cmd_diagnose(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.obs import (
        DEFAULT_SLOS,
        evaluate_slos,
        load_artifacts,
        load_bench_baseline,
        load_campaign_baseline,
        load_slos,
        parse_severity,
        write_diagnosis_artifacts,
    )
    from repro.obs.baselines import DEFAULT_BENCH_SCENARIO
    from repro.obs.diagnosis import diagnose

    slos = load_slos(args.slo) if args.slo is not None else DEFAULT_SLOS
    fail_floor = parse_severity(args.fail_on)

    def bench_baseline() -> t.Any:
        return load_bench_baseline(
            args.baseline,
            scenario=args.scenario or DEFAULT_BENCH_SCENARIO,
            label=args.baseline_label)

    baseline = None
    if args.baseline_campaign is not None:
        baseline = load_campaign_baseline(args.baseline_campaign)

    measurements: dict[str, float] = {}
    obs = None
    if args.from_artifacts is not None:
        obs = load_artifacts(args.from_artifacts)
        report = diagnose(obs)
        if baseline is None and args.baseline.exists():
            baseline = bench_baseline()
    elif args.from_campaign is not None:
        report, measurements = _campaign_diagnosis(args.from_campaign,
                                                   args.campaign_id)
        if baseline is None and args.baseline.exists():
            baseline = bench_baseline()
    elif args.per_rank:
        # The per-rank engine is a different workload from the benchmark
        # scenarios, so no relative baseline applies to it.
        obs, report = _per_rank_diagnosis(args)
    else:
        if baseline is None:
            baseline = bench_baseline()
        obs, report, measurements = _scenario_diagnosis(args, baseline)

    merged = dict(report.measurements)
    merged.update(measurements)
    results = evaluate_slos(
        slos, merged, baseline=baseline,
        registry=obs.registry if obs is not None else None)
    report = dataclasses.replace(report, measurements=merged,
                                 slo_results=results)

    if baseline is not None:
        print(f"baseline: {baseline.describe()}")
    print()
    print(report.to_markdown())
    written = write_diagnosis_artifacts(args.out, report, obs=obs)
    for name, path in sorted(written.items()):
        print(f"wrote {name}: {path}")

    if report.breached_slos:
        names = ", ".join(r.slo.name for r in report.breached_slos)
        print(f"SLO BREACH: {names}", file=sys.stderr)
        return 2
    flagged = report.findings_at(fail_floor)
    if flagged:
        print(f"{len(flagged)} finding(s) at severity >= "
              f"{fail_floor.name}", file=sys.stderr)
        return 3
    return 0


def main(argv: t.Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "check_invariants", False):
        # The environment flag is how every simulator and AIACCConfig
        # constructed downstream picks the checker up, without threading
        # the option through each command's call graph.
        import os

        from repro.sim.invariants import ENV_FLAG

        os.environ[ENV_FLAG] = "1"
    handlers = {
        "table1": cmd_table1,
        "train": cmd_train,
        "bench": cmd_bench,
        "tune": cmd_tune,
        "translate": cmd_translate,
        "faults": cmd_faults,
        "chaos": cmd_chaos,
        "report": cmd_report,
        "campaign": cmd_campaign,
        "cluster": cmd_cluster,
        "diagnose": cmd_diagnose,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
