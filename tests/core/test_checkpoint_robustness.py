"""Checkpoint robustness (ISSUE satellites: atomic temp names, stale-temp
sweep, corrupt-newest fallback, elastic cold start)."""

import numpy as np
import pytest

from repro.core.fault_tolerance import CheckpointManager, ElasticCoordinator
from repro.errors import CheckpointError


def params(seed):
    return {"theta": np.asarray([seed], dtype=np.float32)}


class TestAtomicSave:
    def test_temp_name_never_matches_checkpoint_glob(self, tmp_path):
        """A writer crashing between write and rename must not leave a
        file that latest() would return as a checkpoint."""
        manager = CheckpointManager(tmp_path)
        manager.save(1, params(1))
        # Simulate a crash mid-save: the temp file exists, the rename
        # never happened.
        partial = tmp_path / ".tmp-ckpt-0000000002.npz"
        partial.write_bytes(b"partial garbage")
        assert manager.latest().name == "ckpt-0000000001.npz"

    def test_init_sweeps_stale_temp_files(self, tmp_path):
        stale = tmp_path / ".tmp-ckpt-0000000007.npz"
        stale.write_bytes(b"half-written")
        manager = CheckpointManager(tmp_path)
        assert not stale.exists()
        assert manager.latest() is None

    def test_init_does_not_touch_real_checkpoints(self, tmp_path):
        CheckpointManager(tmp_path).save(3, params(3))
        manager = CheckpointManager(tmp_path)
        iteration, restored, _, _ = manager.load()
        assert iteration == 3
        np.testing.assert_array_equal(restored["theta"], params(3)["theta"])


class TestCorruptFallback:
    def test_load_falls_back_past_corrupt_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, params(1))
        newest = manager.save(2, params(2))
        newest.write_bytes(b"not a zip archive")  # died mid-overwrite
        iteration, restored, _, _ = manager.load()
        assert iteration == 1
        np.testing.assert_array_equal(restored["theta"], params(1)["theta"])
        assert manager.skipped == [newest]

    def test_load_raises_when_all_corrupt(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for i in (1, 2):
            manager.save(i, params(i)).write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="corrupt"):
            manager.load()
        assert len(manager.skipped) == 2

    def test_explicit_path_does_not_fall_back(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, params(1))
        bad = manager.save(2, params(2))
        bad.write_bytes(b"garbage")
        with pytest.raises(CheckpointError):
            manager.load(bad)
        assert manager.skipped == []


class TestElasticColdStart:
    def test_failure_before_first_checkpoint_restarts_fresh(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        elastic = ElasticCoordinator(manager, initial_workers=16,
                                     init_parameters=lambda: params(0))
        iteration, restored = elastic.on_failure(failed_workers=8)
        assert iteration == 0
        np.testing.assert_array_equal(restored["theta"], params(0)["theta"])
        assert elastic.live_workers == 8
        assert elastic.restarts == 1

    def test_cold_start_without_factory_gives_empty_state(self, tmp_path):
        elastic = ElasticCoordinator(CheckpointManager(tmp_path),
                                     initial_workers=4)
        iteration, restored = elastic.on_failure()
        assert (iteration, restored) == (0, {})

    def test_failure_after_checkpoint_restores_it(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        elastic = ElasticCoordinator(manager, initial_workers=4,
                                     init_parameters=lambda: params(0))
        manager.save(9, params(9))
        iteration, restored = elastic.on_failure()
        assert iteration == 9
        np.testing.assert_array_equal(restored["theta"], params(9)["theta"])
