"""Tests for the timed AIACC engine and the stream pool."""

import pytest

from repro.core.engine import AIACCBackend
from repro.core.runtime import AIACCConfig
from repro.core.streams import CommStreamPool
from repro.errors import TrainingError
from repro.sim import GPUDevice, Simulator, V100
from repro.training.trainer import run_training


class TestCommStreamPool:
    def make_pool(self, streams=8, occupancy=0.5):
        sim = Simulator()
        pool = CommStreamPool(sim, GPUDevice(V100), streams, occupancy)
        return sim, pool

    def test_occupancy_limits_streams(self):
        # 80 SMs, 90% busy -> 8 free -> 4 comm streams of 2 SMs each.
        sim, pool = self.make_pool(streams=24, occupancy=0.9)
        pool.compute_started()
        assert pool.effective_streams == 4

    def test_idle_gpu_grants_all_streams(self):
        sim, pool = self.make_pool(streams=24, occupancy=0.9)
        pool.compute_started()
        pool.compute_finished()
        assert pool.effective_streams == 24

    def test_units_queue_when_pool_exhausted(self):
        sim, pool = self.make_pool(streams=2, occupancy=0.5)
        done_times = []

        def unit():
            yield pool.acquire()
            yield sim.timeout(1.0)
            pool.release()
            done_times.append(sim.now)

        for _ in range(4):
            sim.spawn(unit())
        sim.run()
        assert done_times == [1.0, 1.0, 2.0, 2.0]

    def test_weighted_units_serialize(self):
        # A hierarchical unit taking all 8 streams blocks other units.
        sim, pool = self.make_pool(streams=8, occupancy=0.0)
        order = []

        def heavy():
            yield pool.acquire(8)
            order.append(("heavy-start", sim.now))
            yield sim.timeout(1.0)
            pool.release(8)

        def light():
            yield pool.acquire(1)
            order.append(("light-start", sim.now))
            yield sim.timeout(0.1)
            pool.release(1)

        sim.spawn(heavy())
        sim.spawn(light())
        sim.run()
        assert order == [("heavy-start", 0.0), ("light-start", 1.0)]

    def test_setup_latency_scales_with_streams(self):
        sim = Simulator()
        pool = CommStreamPool(sim, GPUDevice(V100), 10, 0.5,
                              setup_latency_s=1e-3)
        done = pool.setup()
        sim.run(until=done)
        assert sim.now == pytest.approx(10e-3)

    def test_setup_latency_attributes_unambiguous(self):
        # The constructor argument is per-stream; the derived total is a
        # separate, explicitly named attribute (the old code silently
        # redefined `setup_latency_s` from per-stream to total).
        sim = Simulator()
        pool = CommStreamPool(sim, GPUDevice(V100), 10, 0.5,
                              setup_latency_s=1e-3)
        assert pool.per_stream_setup_latency_s == pytest.approx(1e-3)
        assert pool.total_setup_latency_s == pytest.approx(10e-3)

    def test_dispatched_units_counts_grants(self):
        sim, pool = self.make_pool(streams=2, occupancy=0.5)

        def unit():
            yield pool.acquire()
            yield sim.timeout(1.0)
            pool.release()

        for _ in range(4):
            sim.spawn(unit())
        sim.run()
        assert pool.dispatched_units == 4

    def test_cancelled_request_not_counted_as_dispatch(self):
        # Count on grant, not on request: a queued acquire withdrawn by
        # an interrupt never dispatched anything.
        sim, pool = self.make_pool(streams=1, occupancy=0.0)

        def never():
            return sim.event(name="hung")

        running = sim.spawn(pool.run_unit(never))
        running.add_callback(lambda _ev: None)
        queued = sim.spawn(pool.run_unit(never))
        queued.add_callback(lambda _ev: None)
        sim.run(until=sim.timeout(1.0))
        assert pool.in_flight == 1
        queued.interrupt("abort")
        sim.run(until=queued)
        assert pool.dispatched_units == 1


class TestAIACCBackend:
    def test_iteration_without_warmup_rejected(self):
        backend = AIACCBackend()
        result = run_training("resnet50", backend, 8, measure_iterations=1,
                              warmup_iterations=0)
        # run_training always calls warmup; direct misuse must raise.
        fresh = AIACCBackend()
        with pytest.raises(TrainingError):
            next(fresh.iteration(object()))

    def test_more_streams_speed_up_comm_bound_model(self):
        few = run_training(
            "vgg16", AIACCBackend(AIACCConfig(num_streams=1)), 32,
            measure_iterations=2, warmup_iterations=1)
        many = run_training(
            "vgg16", AIACCBackend(AIACCConfig(num_streams=16)), 32,
            measure_iterations=2, warmup_iterations=1)
        assert many.throughput > few.throughput * 1.5

    def test_single_stream_close_to_horovod(self):
        # With one stream and large units, AIACC loses its key advantage;
        # it should be in the same ballpark as Horovod (its decentralized
        # sync still helps a little).
        single = run_training(
            "vgg16", AIACCBackend(AIACCConfig(
                num_streams=1, granularity_bytes=64e6)), 32,
            measure_iterations=2, warmup_iterations=1)
        horovod = run_training("vgg16", "horovod", 32,
                               measure_iterations=2, warmup_iterations=1)
        ratio = single.throughput / horovod.throughput
        assert 0.7 < ratio < 1.5

    def test_trace_counts_units_and_syncs(self):
        from repro.sim.tracing import Trace

        trace = Trace(enabled=True)
        run_training("resnet50", AIACCBackend(), 16, measure_iterations=1,
                     warmup_iterations=0, trace=trace)
        assert trace.counters["aiacc.units"] > 0
        assert trace.counters["aiacc.sync_rounds"] > 0
        assert trace.counters["aiacc.gradients"] > 100

    def test_fp16_compression_reduces_comm_time(self):
        plain = run_training(
            "bert-large", AIACCBackend(AIACCConfig(num_streams=4)), 16,
            measure_iterations=2, warmup_iterations=1)
        compressed = run_training(
            "bert-large", AIACCBackend(AIACCConfig(
                num_streams=4, fp16_compression=True)), 16,
            measure_iterations=2, warmup_iterations=1)
        assert compressed.exposed_comm_s < plain.exposed_comm_s


class TestBatchAwareOccupancy:
    """Paper footnote 5: small batches free SMs for comm streams."""

    def test_effective_occupancy_scales_with_batch(self):
        from repro.frameworks.base import TrainContext
        from repro.collectives.timed import TimedCollectives
        from repro.models import get_model
        from repro.sim import FluidNetwork, Simulator, Trace
        from repro.sim import alibaba_v100_cluster

        def ctx_at(batch):
            sim = Simulator()
            net = FluidNetwork(sim)
            cluster = alibaba_v100_cluster(sim, 16)
            return TrainContext(
                sim=sim, network=net, cluster=cluster,
                collectives=TimedCollectives(sim, net, cluster),
                model=get_model("bert-large"), batch_per_gpu=batch,
                trace=Trace(enabled=False))

        full = ctx_at(16)   # BERT default batch
        tiny = ctx_at(2)
        assert tiny.effective_occupancy < full.effective_occupancy
        assert full.effective_occupancy == pytest.approx(0.85)
        # Occupancy never exceeds the nominal value.
        big = ctx_at(64)
        assert big.effective_occupancy == pytest.approx(0.85)

    def test_small_batch_gets_more_streams(self):
        from repro.sim import GPUDevice, V100
        from repro.frameworks.base import TrainContext
        from repro.collectives.timed import TimedCollectives
        from repro.models import get_model
        from repro.sim import FluidNetwork, Simulator, Trace
        from repro.sim import alibaba_v100_cluster

        sim = Simulator()
        net = FluidNetwork(sim)
        cluster = alibaba_v100_cluster(sim, 16)
        model = get_model("bert-large")
        device = GPUDevice(V100)

        def streams_at(batch):
            ctx = TrainContext(
                sim=sim, network=net, cluster=cluster,
                collectives=TimedCollectives(sim, net, cluster),
                model=model, batch_per_gpu=batch,
                trace=Trace(enabled=False))
            return device.max_concurrent_comm_streams(
                ctx.effective_occupancy)

        assert streams_at(2) > streams_at(16)
