"""Unit tests for the elastic membership runtime (`repro.core.elastic`).

Covers the epoch bookkeeping (views, transitions, monotonic epochs), the
coordinator's clean-departure and live-broadcast join paths, the tuner
re-key on topology change and the cluster-side rejoin bookkeeping
(`Cluster.uncrash`).
"""

import numpy as np
import pytest

from repro.autotune.cache import SettingsCache
from repro.autotune.space import ParameterPoint
from repro.core.elastic import ElasticRuntime, EpochTransition, \
    MembershipView
from repro.core.fault_tolerance import CheckpointManager, ElasticCoordinator
from repro.core.runtime import AIACCConfig
from repro.errors import CheckpointError, TopologyError, TrainingError
from repro.sim.kernel import Simulator
from repro.sim.topology import Cluster, NodeSpec


def make_runtime(tmp_path, nodes=4, gpus_per_node=2, cache=None):
    manager = CheckpointManager(tmp_path)
    coordinator = ElasticCoordinator(
        manager, initial_workers=nodes * gpus_per_node)
    runtime = ElasticRuntime(coordinator, members=range(nodes),
                             gpus_per_node=gpus_per_node,
                             settings_cache=cache)
    return runtime, coordinator


class TestMembershipView:
    def test_world_size(self):
        view = MembershipView(0, (0, 1, 2), gpus_per_node=4)
        assert view.num_nodes == 3
        assert view.world_size == 12

    def test_validation(self):
        with pytest.raises(TrainingError):
            MembershipView(-1, (0,), 1)
        with pytest.raises(TrainingError):
            MembershipView(0, (), 1)
        with pytest.raises(TrainingError):
            MembershipView(0, (0, 0), 1)
        with pytest.raises(TrainingError):
            MembershipView(0, (0,), 0)


class TestEpochTransition:
    def make(self, **overrides):
        base = dict(epoch=1, at_s=1.0, kind="scale-down", departed=(1,),
                    joined=(), world_before=8, world_after=6,
                    live_continuation=True, broadcast_identical=None,
                    resumed_iteration=3, lr_scale=0.75,
                    reconfigure_time_s=0.5)
        base.update(overrides)
        return EpochTransition(**base)

    def test_valid_transition(self):
        assert self.make().kind == "scale-down"

    def test_rejects_unknown_kind(self):
        with pytest.raises(TrainingError):
            self.make(kind="resize")

    def test_rejects_bad_worlds_and_times(self):
        with pytest.raises(TrainingError):
            self.make(world_after=0)
        with pytest.raises(TrainingError):
            self.make(reconfigure_time_s=-0.1)


class TestScaleDown:
    def test_clean_departure_continues_live(self, tmp_path):
        runtime, coordinator = make_runtime(tmp_path)
        transition = runtime.scale_down([3], at_s=2.0,
                                        resumed_iteration=5,
                                        reconfigure_time_s=0.4)
        assert runtime.epoch == 1
        assert runtime.members == (0, 1, 2)
        assert coordinator.live_workers == 6
        assert coordinator.departures == 2  # 1 node x 2 GPUs
        assert coordinator.restarts == 0  # no checkpoint restore
        assert transition.kind == "scale-down"
        assert transition.live_continuation is True
        assert transition.broadcast_identical is None
        assert transition.resumed_iteration == 5  # nothing lost
        assert transition.lr_scale == pytest.approx(0.75)

    def test_rejects_non_member_and_empty_group(self, tmp_path):
        runtime, _ = make_runtime(tmp_path)
        with pytest.raises(TrainingError, match="non-members"):
            runtime.scale_down([9], at_s=0.0, resumed_iteration=0,
                               reconfigure_time_s=0.0)
        with pytest.raises(TrainingError):
            runtime.scale_down([], at_s=0.0, resumed_iteration=0,
                               reconfigure_time_s=0.0)
        with pytest.raises((TrainingError, CheckpointError)):
            runtime.scale_down([0, 1, 2, 3], at_s=0.0,
                               resumed_iteration=0, reconfigure_time_s=0.0)


class TestScaleUp:
    def test_join_broadcasts_bit_identical_state(self, tmp_path):
        runtime, coordinator = make_runtime(tmp_path, nodes=2)
        live = [{"w": np.arange(6, dtype=np.float32) + rank * 0}
                for rank in range(4)]
        states, transition = runtime.scale_up(
            [2], at_s=1.0, live_parameters=live, resumed_iteration=4,
            reconfigure_time_s=0.8)
        assert runtime.epoch == 1
        assert runtime.members == (0, 1, 2)
        assert coordinator.live_workers == 6
        assert len(states) == 6
        # Every rank — including both joiners — is bit-identical to
        # rank 0: the broadcast correctness contract.
        for state in states[1:]:
            np.testing.assert_array_equal(state["w"], states[0]["w"])
        assert transition.kind == "scale-up"
        assert transition.broadcast_identical is True
        assert transition.live_continuation is True
        assert transition.lr_scale == pytest.approx(1.5)

    def test_rejoin_keeps_identity(self, tmp_path):
        runtime, _ = make_runtime(tmp_path)
        runtime.scale_down([1], at_s=1.0, resumed_iteration=2,
                           reconfigure_time_s=0.1)
        live = [{"w": np.ones(2)} for _ in range(6)]
        _, transition = runtime.scale_up(
            [1], at_s=2.0, live_parameters=live, resumed_iteration=3,
            reconfigure_time_s=0.2)
        assert runtime.members == (0, 2, 3, 1)
        assert transition.joined == (1,)
        assert runtime.epoch == 2
        assert runtime.lr_scale() == pytest.approx(1.0)

    def test_rejects_existing_member(self, tmp_path):
        runtime, _ = make_runtime(tmp_path)
        with pytest.raises(TrainingError, match="existing members"):
            runtime.scale_up([0], at_s=0.0, live_parameters=[],
                             resumed_iteration=0, reconfigure_time_s=0.0)


class TestFailureTransition:
    def test_failure_records_checkpoint_restore(self, tmp_path):
        runtime, coordinator = make_runtime(tmp_path)
        # The driver routes state through on_failure first ...
        coordinator.on_failure(failed_workers=2)
        transition = runtime.failure([2], at_s=3.0, resumed_iteration=0,
                                     reconfigure_time_s=1.5)
        assert transition.kind == "failure"
        assert transition.live_continuation is False
        assert runtime.members == (0, 1, 3)

    def test_divergence_from_coordinator_detected(self, tmp_path):
        runtime, _ = make_runtime(tmp_path)
        # ... skipping on_failure leaves the coordinator at the old
        # count, which the runtime refuses to paper over.
        with pytest.raises(TrainingError, match="divergence"):
            runtime.failure([2], at_s=3.0, resumed_iteration=0,
                            reconfigure_time_s=1.5)

    def test_epochs_are_monotonic_across_transitions(self, tmp_path):
        runtime, coordinator = make_runtime(tmp_path)
        runtime.scale_down([0], at_s=1.0, resumed_iteration=1,
                           reconfigure_time_s=0.1)
        coordinator.on_failure(failed_workers=2)
        runtime.failure([1], at_s=2.0, resumed_iteration=0,
                        reconfigure_time_s=0.5)
        live = [{"w": np.zeros(1)} for _ in range(4)]
        runtime.scale_up([5], at_s=3.0, live_parameters=live,
                         resumed_iteration=2, reconfigure_time_s=0.3)
        assert [t.epoch for t in runtime.transitions] == [1, 2, 3]
        assert runtime.epoch == 3


class TestRetune:
    def test_rekey_applies_cached_point(self, tmp_path):
        from repro.models.zoo import get_model

        sim = Simulator()
        model = get_model("resnet50")
        cluster = Cluster(sim, 3, NodeSpec(gpus_per_node=2))
        cache = SettingsCache()
        cache.store("prior-3node", model, cluster.topology_graph(),
                    ParameterPoint(num_streams=4,
                                   granularity_bytes=8e6,
                                   algorithm="hierarchical"),
                    best_cost_s=0.01)
        runtime, _ = make_runtime(tmp_path, cache=cache)
        config, label = runtime.retune(model, cluster, AIACCConfig())
        assert label == "prior-3node"
        assert config.num_streams == 4
        assert config.granularity_bytes == 8e6
        assert config.algorithm == "hierarchical"

    def test_no_cache_leaves_config_unchanged(self, tmp_path):
        from repro.models.zoo import get_model

        sim = Simulator()
        cluster = Cluster(sim, 2, NodeSpec(gpus_per_node=2))
        runtime, _ = make_runtime(tmp_path, cache=None)
        config = AIACCConfig()
        tuned, label = runtime.retune(get_model("resnet50"), cluster,
                                      config)
        assert tuned is config
        assert label is None


class TestCoordinatorMembership:
    def test_on_leave_counts_departures(self, tmp_path):
        coordinator = ElasticCoordinator(CheckpointManager(tmp_path),
                                         initial_workers=8)
        assert coordinator.on_leave(departing_workers=2) == 6
        assert coordinator.departures == 2
        assert coordinator.restarts == 0

    def test_on_leave_rejects_bad_counts(self, tmp_path):
        coordinator = ElasticCoordinator(CheckpointManager(tmp_path),
                                         initial_workers=4)
        with pytest.raises(CheckpointError):
            coordinator.on_leave(departing_workers=0)
        with pytest.raises(CheckpointError):
            coordinator.on_leave(departing_workers=4)

    def test_on_join_broadcast_multi_tensor_state(self, tmp_path):
        coordinator = ElasticCoordinator(CheckpointManager(tmp_path),
                                         initial_workers=3)
        live = [{"w": np.full((2, 3), 7.0), "b": np.arange(4.0)}
                for _ in range(3)]
        result = coordinator.on_join(live, new_workers=2)
        assert coordinator.live_workers == 5
        assert coordinator.joins == 2
        assert len(result) == 5
        for state in result:
            np.testing.assert_array_equal(state["w"], live[0]["w"])
            np.testing.assert_array_equal(state["b"], live[0]["b"])
            assert state["w"].shape == (2, 3)  # shape survives the ravel


class TestClusterUncrash:
    def test_uncrash_clears_failed_mark(self):
        sim = Simulator()
        cluster = Cluster(sim, 3, NodeSpec(gpus_per_node=2))
        cluster.fail_node(1)
        assert cluster.alive_nodes == [0, 2]
        cluster.uncrash(1)
        assert cluster.failed_nodes == set()
        assert cluster.alive_world_size == cluster.world_size
        cluster.uncrash(1)  # idempotent

    def test_uncrash_checks_range(self):
        sim = Simulator()
        cluster = Cluster(sim, 2, NodeSpec(gpus_per_node=1))
        with pytest.raises(TopologyError):
            cluster.uncrash(5)
