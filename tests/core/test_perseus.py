"""Tests for the Perseus numeric API (the full AIACC pipeline on numpy)."""

import numpy as np
import pytest

from repro.core.perseus import PerseusSession, init
from repro.core.runtime import AIACCConfig
from repro.errors import NaNGradientError, RegistrationError, ReproError


def make_session(size=3, **config_kwargs):
    session = init(size, config=AIACCConfig(**config_kwargs)
                   if config_kwargs else None)
    session.register_parameters({
        "fc.weight": (4, 5),
        "fc.bias": (5,),
        "conv.weight": (3, 3, 2),
    })
    return session


def random_grads(session, seed):
    rng = np.random.default_rng(seed)
    return [
        {
            "fc.weight": rng.normal(size=(4, 5)),
            "fc.bias": rng.normal(size=(5,)),
            "conv.weight": rng.normal(size=(3, 3, 2)),
        }
        for _ in session.ranks()
    ]


class TestReduceGradients:
    def test_average_matches_numpy(self):
        session = make_session(size=3)
        worker_grads = random_grads(session, seed=0)
        reduced = session.reduce_gradients(worker_grads)
        for name in worker_grads[0]:
            expected = np.mean([g[name] for g in worker_grads], axis=0)
            for result in reduced:
                # Gradients travel the wire as fp32, so agreement is at
                # single precision, not double.
                np.testing.assert_allclose(result[name], expected,
                                           rtol=1e-6, atol=1e-6)

    def test_all_workers_get_identical_results(self):
        session = make_session(size=4)
        reduced = session.reduce_gradients(random_grads(session, seed=1))
        for name in reduced[0]:
            for other in reduced[1:]:
                np.testing.assert_array_equal(reduced[0][name], other[name])

    def test_shapes_preserved(self):
        session = make_session()
        reduced = session.reduce_gradients(random_grads(session, seed=2))
        assert reduced[0]["fc.weight"].shape == (4, 5)
        assert reduced[0]["conv.weight"].shape == (3, 3, 2)

    def test_small_granularity_splits_units_same_result(self):
        # Tiny granularity forces multi-unit packing with tensor slices;
        # results must not change.
        base = make_session(size=3)
        tiny = make_session(size=3, granularity_bytes=1024 * 512)
        grads = random_grads(base, seed=3)
        a = base.reduce_gradients(grads)
        b = tiny.reduce_gradients([{k: v.copy() for k, v in g.items()}
                                   for g in grads])
        for name in a[0]:
            np.testing.assert_allclose(a[0][name], b[0][name], rtol=1e-10)

    def test_step_counter(self):
        session = make_session()
        session.reduce_gradients(random_grads(session, seed=4))
        session.reduce_gradients(random_grads(session, seed=5))
        assert session.steps_completed == 2

    def test_single_worker_passthrough(self):
        session = init(1)
        session.register_parameters({"w": (3,)})
        grads = [{"w": np.array([1.0, 2.0, 3.0])}]
        reduced = session.reduce_gradients(grads)
        np.testing.assert_allclose(reduced[0]["w"], [1.0, 2.0, 3.0])


class TestFP16Compression:
    def test_result_close_to_fp32(self):
        plain = make_session(size=2)
        compressed = make_session(size=2, fp16_compression=True)
        grads = random_grads(plain, seed=6)
        exact = plain.reduce_gradients(grads)
        approx = compressed.reduce_gradients(
            [{k: v.copy() for k, v in g.items()} for g in grads])
        for name in exact[0]:
            np.testing.assert_allclose(approx[0][name], exact[0][name],
                                       rtol=2e-3, atol=2e-3)

    def test_wire_bytes_halved(self):
        session = make_session(size=2, fp16_compression=True)
        session.reduce_gradients(random_grads(session, seed=7))
        assert session.compressor.stats.ratio == pytest.approx(2.0)

    def test_out_of_range_values_clamped_not_inf(self):
        session = make_session(size=2, fp16_compression=True)
        grads = random_grads(session, seed=8)
        grads[0]["fc.bias"][:] = 1e38  # far beyond fp16 range
        reduced = session.reduce_gradients(grads)
        assert np.all(np.isfinite(reduced[0]["fc.bias"]))


class TestNaNDetection:
    def test_nan_raises_with_attribution(self):
        session = make_session(size=2, nan_check=True)
        grads = random_grads(session, seed=9)
        grads[1]["conv.weight"][0, 0, 0] = np.nan
        with pytest.raises(NaNGradientError) as excinfo:
            session.reduce_gradients(grads)
        assert excinfo.value.parameter_name == "conv.weight"
        assert excinfo.value.worker_rank == 1

    def test_inf_also_detected(self):
        session = make_session(size=2, nan_check=True)
        grads = random_grads(session, seed=10)
        grads[0]["fc.weight"][0, 0] = np.inf
        with pytest.raises(NaNGradientError):
            session.reduce_gradients(grads)

    def test_disabled_by_default(self):
        session = make_session(size=2)
        grads = random_grads(session, seed=11)
        grads[0]["fc.bias"][0] = np.nan
        reduced = session.reduce_gradients(grads)  # must not raise
        assert np.isnan(reduced[0]["fc.bias"][0])


class TestValidation:
    def test_step_before_registration_rejected(self):
        session = init(2)
        with pytest.raises(RegistrationError):
            session.reduce_gradients([{}, {}])

    def test_double_registration_rejected(self):
        session = make_session()
        with pytest.raises(RegistrationError):
            session.register_parameters({"x": (1,)})

    def test_empty_registration_rejected(self):
        with pytest.raises(RegistrationError):
            init(2).register_parameters({})

    def test_wrong_worker_count_rejected(self):
        session = make_session(size=3)
        with pytest.raises(RegistrationError):
            session.reduce_gradients(random_grads(make_session(2), 0)[:2])

    def test_missing_key_rejected(self):
        session = make_session(size=2)
        grads = random_grads(session, seed=12)
        del grads[0]["fc.bias"]
        with pytest.raises(RegistrationError):
            session.reduce_gradients(grads)

    def test_zero_size_session_rejected(self):
        with pytest.raises(RegistrationError):
            PerseusSession(0)

    def test_bad_config_rejected(self):
        with pytest.raises(ReproError):
            AIACCConfig(num_streams=0)


class TestCollectives:
    def test_allreduce_average(self):
        session = init(3)
        arrays = [np.full((2, 2), float(rank)) for rank in range(3)]
        for result in session.allreduce(arrays):
            np.testing.assert_allclose(result, np.full((2, 2), 1.0))

    def test_broadcast_parameters(self):
        session = init(3)
        params = {"w": np.arange(6.0).reshape(2, 3)}
        result = session.broadcast_parameters([params, None, None],
                                              root_rank=0)
        for worker in result:
            np.testing.assert_array_equal(worker["w"], params["w"])

    def test_broadcast_from_nonzero_root(self):
        session = init(3)
        params = {"w": np.ones(4)}
        result = session.broadcast_parameters([None, params, None],
                                              root_rank=1)
        for worker in result:
            np.testing.assert_array_equal(worker["w"], np.ones(4))
