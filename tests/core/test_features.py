"""Tests for compression, debugging, fault tolerance and the translator."""

import numpy as np
import pytest

from repro.core.compression import FP16Compressor, NullCompressor
from repro.core.debugging import GradientDebugger, check_finite
from repro.core.fault_tolerance import CheckpointManager, ElasticCoordinator
from repro.core.translator import (
    translate_horovod_source,
    translate_sequential_source,
)
from repro.errors import CheckpointError, NaNGradientError, TranslationError


class TestCompression:
    def test_fp16_roundtrip_precision(self):
        compressor = FP16Compressor()
        data = np.linspace(-5, 5, 100, dtype=np.float32)
        restored = compressor.decompress(compressor.compress(data))
        np.testing.assert_allclose(restored, data, rtol=1e-3, atol=1e-3)

    def test_fp16_halves_bytes(self):
        compressor = FP16Compressor()
        compressor.compress(np.zeros(1000, dtype=np.float32))
        assert compressor.stats.ratio == pytest.approx(2.0)

    def test_fp16_clamps_overflow(self):
        compressor = FP16Compressor()
        out = compressor.compress(np.array([1e38, -1e38], dtype=np.float32))
        assert np.all(np.isfinite(out.astype(np.float32)))

    def test_null_compressor_identity(self):
        compressor = NullCompressor()
        data = np.arange(10.0)
        np.testing.assert_array_equal(compressor.compress(data), data)
        assert compressor.stats.ratio == pytest.approx(1.0)


class TestDebugging:
    def test_check_finite_raises_on_nan(self):
        with pytest.raises(NaNGradientError):
            check_finite("w", np.array([1.0, np.nan]), worker_rank=3)

    def test_check_finite_passes_clean(self):
        check_finite("w", np.array([1.0, 2.0]), worker_rank=0)

    def test_debugger_collects_stats(self):
        debugger = GradientDebugger(nan_check=False)
        debugger.observe("w", np.array([3.0, 4.0]))
        assert debugger.stats["w"].last_norm == pytest.approx(5.0)
        assert debugger.stats["w"].max_abs == pytest.approx(4.0)

    def test_debugger_warns_on_explosion(self):
        debugger = GradientDebugger(nan_check=False,
                                    explosion_threshold=10.0)
        debugger.observe("w", np.array([100.0]))
        assert any("exceeds" in w for w in debugger.warnings())

    def test_debugger_counts_nans_when_lenient(self):
        debugger = GradientDebugger(nan_check=False)
        debugger.observe("w", np.array([np.nan, 1.0, np.inf]))
        assert debugger.stats["w"].nan_count == 2
        assert any("non-finite" in w for w in debugger.warnings())


class TestCheckpoints:
    def test_save_load_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        params = {"w": np.arange(6.0).reshape(2, 3), "b": np.ones(3)}
        opt = {"velocity/w": np.zeros((2, 3))}
        manager.save(42, params, opt, metadata={"lr": 0.1})
        iteration, loaded, opt_loaded, meta = manager.load()
        assert iteration == 42
        np.testing.assert_array_equal(loaded["w"], params["w"])
        np.testing.assert_array_equal(opt_loaded["velocity/w"],
                                      opt["velocity/w"])
        assert meta["lr"] == 0.1

    def test_latest_returns_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, {"w": np.zeros(2)})
        manager.save(5, {"w": np.ones(2)})
        iteration, params, _, _ = manager.load()
        assert iteration == 5
        np.testing.assert_array_equal(params["w"], np.ones(2))

    def test_prune_keeps_last_n(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2)
        for i in range(5):
            manager.save(i, {"w": np.zeros(1)})
        assert len(list(tmp_path.glob("ckpt-*.npz"))) == 2

    def test_load_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path).load()

    def test_negative_iteration_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path).save(-1, {"w": np.zeros(1)})


class TestElasticity:
    def test_failure_restores_from_checkpoint(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(10, {"w": np.full(3, 7.0)})
        coordinator = ElasticCoordinator(manager, initial_workers=4)
        iteration, params = coordinator.on_failure(failed_workers=1)
        assert iteration == 10
        assert coordinator.live_workers == 3
        np.testing.assert_array_equal(params["w"], np.full(3, 7.0))

    def test_cannot_lose_all_workers(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        coordinator = ElasticCoordinator(manager, initial_workers=2)
        with pytest.raises(CheckpointError):
            coordinator.on_failure(failed_workers=2)

    def test_join_broadcasts_parameters(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        coordinator = ElasticCoordinator(manager, initial_workers=2)
        live = [{"w": np.arange(4.0)}, {"w": np.arange(4.0)}]
        result = coordinator.on_join(live, new_workers=2)
        assert coordinator.live_workers == 4
        assert len(result) == 4
        for worker in result:
            np.testing.assert_array_equal(worker["w"], np.arange(4.0))

    def test_join_validates_live_state(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        coordinator = ElasticCoordinator(manager, initial_workers=3)
        with pytest.raises(CheckpointError):
            coordinator.on_join([{"w": np.zeros(1)}], new_workers=1)


class TestTranslator:
    def test_horovod_import_rewritten(self):
        source = "import horovod.torch as hvd\nhvd.init()\n"
        out = translate_horovod_source(source)
        assert "import repro.core.perseus as hvd" in out
        assert "horovod" not in out

    def test_horovod_from_import_rewritten(self):
        source = "from horovod.tensorflow import allreduce\n"
        out = translate_horovod_source(source)
        assert "from repro.core.perseus import allreduce" in out

    def test_non_horovod_source_untouched(self):
        source = "import numpy as np\nx = np.zeros(3)\n"
        assert translate_horovod_source(source) == source

    def test_invalid_python_rejected(self):
        with pytest.raises(TranslationError):
            translate_horovod_source("def broken(:\n")

    def test_sequential_script_gets_init_and_wrapper(self):
        source = (
            "lr = 0.1\n"
            "optimizer = SGD(lr=lr, momentum=0.9)\n"
        )
        out = translate_sequential_source(source, num_workers=4)
        assert "perseus.init(size=4)" in out
        assert "DistributedOptimizer(SGD(" in out
        assert "lr * _perseus.size()" in out
        compile(out, "<translated>", "exec")  # must stay valid Python

    def test_sequential_docstring_preserved_first(self):
        source = '"""My training script."""\nopt = Adam(lr=1e-3)\n'
        out = translate_sequential_source(source)
        assert out.splitlines()[0].startswith("'''My training script.'''") \
            or out.splitlines()[0].startswith('"""My training script."""')

    def test_sequential_without_optimizer_rejected(self):
        with pytest.raises(TranslationError):
            translate_sequential_source("x = 1\n")

    def test_sequential_bad_worker_count_rejected(self):
        with pytest.raises(TranslationError):
            translate_sequential_source("opt = SGD(lr=0.1)\n",
                                        num_workers=0)

    def test_attribute_optimizer_calls_recognised(self):
        source = "opt = torch.optim.SGD(params, lr=0.01)\n"
        out = translate_sequential_source(source, num_workers=2)
        assert "DistributedOptimizer" in out
