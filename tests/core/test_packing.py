"""Tests for gradient packing into all-reduce units."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packing import GradientPacker, unpack
from repro.errors import PackingError


class TestPacking:
    def test_merge_small_tensors(self):
        packer = GradientPacker(granularity_bytes=100)
        units = packer.pack([(0, 30), (1, 30), (2, 30)])
        assert len(units) == 1
        assert units[0].nbytes == 90
        assert [s.grad_id for s in units[0].slices] == [0, 1, 2]

    def test_split_large_tensor(self):
        # The VGG fc6 case: one huge tensor becomes many units that can
        # ride concurrent streams (unlike Horovod's whole-tensor fusion).
        packer = GradientPacker(granularity_bytes=100)
        units = packer.pack([(0, 410)])
        assert len(units) == 5
        assert [u.nbytes for u in units] == [100, 100, 100, 100, 10]
        offsets = [u.slices[0].offset for u in units]
        assert offsets == [0, 100, 200, 300, 400]

    def test_mixed_split_and_merge(self):
        packer = GradientPacker(granularity_bytes=100)
        units = packer.pack([(0, 60), (1, 120), (2, 20)])
        assert sum(u.nbytes for u in units) == 200
        assert len(units) == 2
        # Unit boundaries are exactly at the granularity.
        assert units[0].nbytes == 100

    def test_exact_fit(self):
        packer = GradientPacker(granularity_bytes=50)
        units = packer.pack([(0, 50), (1, 50)])
        assert [u.nbytes for u in units] == [50, 50]

    def test_deterministic_id_order(self):
        # Workers pack in gradient-id order so they implicitly agree on
        # communication order (paper §V-B).
        packer_a = GradientPacker(100)
        packer_b = GradientPacker(100)
        units_a = packer_a.pack([(2, 40), (0, 40), (1, 40)])
        units_b = packer_b.pack([(0, 40), (1, 40), (2, 40)])
        assert [[(s.grad_id, s.offset, s.nbytes) for s in u.slices]
                for u in units_a] == \
            [[(s.grad_id, s.offset, s.nbytes) for s in u.slices]
             for u in units_b]

    def test_unit_ids_monotonic_across_calls(self):
        packer = GradientPacker(100)
        first = packer.pack([(0, 150)])
        second = packer.pack([(1, 150)])
        ids = [u.unit_id for u in first + second]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_empty_input(self):
        assert GradientPacker(100).pack([]) == []

    def test_duplicate_gradient_rejected(self):
        with pytest.raises(PackingError):
            GradientPacker(100).pack([(0, 10), (0, 20)])

    def test_zero_byte_gradient_rejected(self):
        with pytest.raises(PackingError):
            GradientPacker(100).pack([(0, 0)])

    def test_invalid_granularity_rejected(self):
        with pytest.raises(PackingError):
            GradientPacker(0)


class TestUnpack:
    def test_roundtrip_totals(self):
        packer = GradientPacker(64)
        gradients = [(0, 100), (1, 30), (2, 200)]
        units = packer.pack(gradients)
        totals = unpack(units)
        assert totals == {0: 100, 1: 30, 2: 200}

    def test_gap_detected(self):
        packer = GradientPacker(64)
        units = packer.pack([(0, 200)])
        # Drop a middle unit: the gap must be detected.
        with pytest.raises(PackingError):
            unpack([units[0], units[2]] if len(units) > 2 else units[:1])

    @settings(max_examples=50, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 500), min_size=1, max_size=20),
        granularity=st.integers(1, 256),
    )
    def test_property_pack_unpack_roundtrip(self, sizes, granularity):
        packer = GradientPacker(granularity)
        gradients = list(enumerate(sizes))
        units = packer.pack(gradients)
        # Invariant 1: all units except possibly the last are full.
        for unit in units[:-1]:
            assert unit.nbytes == granularity
        # Invariant 2: totals reconstruct exactly.
        assert unpack(units) == dict(gradients)
        # Invariant 3: byte conservation.
        assert sum(u.nbytes for u in units) == sum(sizes)
