"""Tests for gradient packing into all-reduce units."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packing import (
    GradientPacker,
    SLICE_EPSILON_FRACTION,
    unpack,
)
from repro.errors import PackingError


class TestPacking:
    def test_merge_small_tensors(self):
        packer = GradientPacker(granularity_bytes=100)
        units = packer.pack([(0, 30), (1, 30), (2, 30)])
        assert len(units) == 1
        assert units[0].nbytes == 90
        assert [s.grad_id for s in units[0].slices] == [0, 1, 2]

    def test_split_large_tensor(self):
        # The VGG fc6 case: one huge tensor becomes many units that can
        # ride concurrent streams (unlike Horovod's whole-tensor fusion).
        packer = GradientPacker(granularity_bytes=100)
        units = packer.pack([(0, 410)])
        assert len(units) == 5
        assert [u.nbytes for u in units] == [100, 100, 100, 100, 10]
        offsets = [u.slices[0].offset for u in units]
        assert offsets == [0, 100, 200, 300, 400]

    def test_mixed_split_and_merge(self):
        packer = GradientPacker(granularity_bytes=100)
        units = packer.pack([(0, 60), (1, 120), (2, 20)])
        assert sum(u.nbytes for u in units) == 200
        assert len(units) == 2
        # Unit boundaries are exactly at the granularity.
        assert units[0].nbytes == 100

    def test_exact_fit(self):
        packer = GradientPacker(granularity_bytes=50)
        units = packer.pack([(0, 50), (1, 50)])
        assert [u.nbytes for u in units] == [50, 50]

    def test_deterministic_id_order(self):
        # Workers pack in gradient-id order so they implicitly agree on
        # communication order (paper §V-B).
        packer_a = GradientPacker(100)
        packer_b = GradientPacker(100)
        units_a = packer_a.pack([(2, 40), (0, 40), (1, 40)])
        units_b = packer_b.pack([(0, 40), (1, 40), (2, 40)])
        assert [[(s.grad_id, s.offset, s.nbytes) for s in u.slices]
                for u in units_a] == \
            [[(s.grad_id, s.offset, s.nbytes) for s in u.slices]
             for u in units_b]

    def test_unit_ids_monotonic_across_calls(self):
        packer = GradientPacker(100)
        first = packer.pack([(0, 150)])
        second = packer.pack([(1, 150)])
        ids = [u.unit_id for u in first + second]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_empty_input(self):
        assert GradientPacker(100).pack([]) == []

    def test_duplicate_gradient_rejected(self):
        with pytest.raises(PackingError):
            GradientPacker(100).pack([(0, 10), (0, 20)])

    def test_zero_byte_gradient_rejected(self):
        with pytest.raises(PackingError):
            GradientPacker(100).pack([(0, 0)])

    def test_invalid_granularity_rejected(self):
        with pytest.raises(PackingError):
            GradientPacker(0)


class TestFloatResidue:
    """Regression: accumulated float error must not emit degenerate slices.

    Summing many sizes that are not exactly representable (0.1, 0.2, ...)
    leaves the unit accumulator a hair short of the granularity; the old
    exact-fullness close then emitted a ~1e-16-byte residue slice (and,
    at 16 MiB scale, the residue can fall below the accumulator's float
    epsilon, so packing stalled adding zero forever).
    """

    @staticmethod
    def _assert_no_degenerate_slices(units, granularity):
        epsilon = granularity * SLICE_EPSILON_FRACTION
        split_counts = {}
        for unit in units:
            for piece in unit.slices:
                split_counts[piece.grad_id] = \
                    split_counts.get(piece.grad_id, 0) + 1
        for unit in units:
            for piece in unit.slices:
                if split_counts[piece.grad_id] > 1:
                    assert piece.nbytes > epsilon, (
                        f"degenerate {piece.nbytes!r}-byte slice of "
                        f"gradient {piece.grad_id}")

    def test_tenths_fill_unit_without_residue_slice(self):
        # 10 x 0.1 sums to 0.9999999999999999 < 1.0: the old code packed
        # an 11th slice of 1.1e-16 bytes to "fill" the unit.
        packer = GradientPacker(granularity_bytes=1.0)
        units = packer.pack([(i, 0.1) for i in range(50)])
        self._assert_no_degenerate_slices(units, 1.0)
        assert sum(u.nbytes for u in units) == pytest.approx(5.0)
        assert unpack(units) == {i: pytest.approx(0.1) for i in range(50)}
        # Units close within tolerance: 10 tenths per unit, 5 units.
        assert len(units) == 5
        assert all(len(u.slices) == 10 for u in units)

    def test_issue_case_16mib_granularity(self):
        # The issue's adversarial sizes: granularity 16 MiB, gradients of
        # 0.1 and 0.2 MB repeating.  At this scale a sub-epsilon residue
        # of room is below float eps(16 MiB) and the old loop stalled.
        granularity = 16.0 * 1024 * 1024
        sizes = [(i, 0.1e6 if i % 2 else 0.2e6) for i in range(2000)]
        packer = GradientPacker(granularity)
        units = packer.pack(sizes)
        self._assert_no_degenerate_slices(units, granularity)
        totals = unpack(units)
        for gid, nbytes in sizes:
            assert totals[gid] == pytest.approx(nbytes)
        epsilon = granularity * SLICE_EPSILON_FRACTION
        for unit in units[:-1]:
            assert unit.nbytes == pytest.approx(granularity,
                                                abs=2 * epsilon)

    @settings(max_examples=50, deadline=None)
    @given(
        sizes=st.lists(
            st.floats(0.01, 500.0, allow_nan=False, allow_infinity=False),
            min_size=1, max_size=30),
        granularity=st.floats(0.5, 256.0),
    )
    def test_property_float_sizes_roundtrip(self, sizes, granularity):
        packer = GradientPacker(granularity)
        gradients = list(enumerate(sizes))
        units = packer.pack(gradients)
        self._assert_no_degenerate_slices(units, granularity)
        totals = unpack(units)
        for gid, nbytes in gradients:
            assert totals[gid] == pytest.approx(nbytes)
        assert sum(u.nbytes for u in units) == pytest.approx(sum(sizes))

    def test_thousand_random_gradient_lists_roundtrip(self):
        # Issue satellite: exact totals, no gap/overlap (unpack raises on
        # either), and no degenerate slices across 1k random lists.
        rng = random.Random(20260806)
        for _ in range(1000):
            granularity = rng.uniform(1.0, 64.0)
            count = rng.randint(1, 12)
            gradients = [(gid, rng.uniform(0.05, 4 * granularity))
                         for gid in range(count)]
            units = GradientPacker(granularity).pack(gradients)
            self._assert_no_degenerate_slices(units, granularity)
            totals = unpack(units)
            for gid, nbytes in gradients:
                assert totals[gid] == pytest.approx(nbytes)


class TestUnpack:
    def test_roundtrip_totals(self):
        packer = GradientPacker(64)
        gradients = [(0, 100), (1, 30), (2, 200)]
        units = packer.pack(gradients)
        totals = unpack(units)
        assert totals == {0: 100, 1: 30, 2: 200}

    def test_gap_detected(self):
        packer = GradientPacker(64)
        units = packer.pack([(0, 200)])
        # Drop a middle unit: the gap must be detected.
        with pytest.raises(PackingError):
            unpack([units[0], units[2]] if len(units) > 2 else units[:1])

    @settings(max_examples=50, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 500), min_size=1, max_size=20),
        granularity=st.integers(1, 256),
    )
    def test_property_pack_unpack_roundtrip(self, sizes, granularity):
        packer = GradientPacker(granularity)
        gradients = list(enumerate(sizes))
        units = packer.pack(gradients)
        # Invariant 1: all units except possibly the last are full.
        for unit in units[:-1]:
            assert unit.nbytes == granularity
        # Invariant 2: totals reconstruct exactly.
        assert unpack(units) == dict(gradients)
        # Invariant 3: byte conservation.
        assert sum(u.nbytes for u in units) == sum(sizes)
