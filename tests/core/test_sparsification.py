"""Tests for top-k gradient sparsification with error feedback."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sparsification import (
    BYTES_PER_SPARSE_ELEMENT,
    TopKCompressor,
    sparse_allreduce,
    sparse_wire_bytes,
    train_step_with_topk,
)
from repro.errors import ReproError


class TestTopK:
    def test_selects_largest_magnitudes(self):
        compressor = TopKCompressor(compress_ratio=0.2)
        gradient = np.array([0.1, -5.0, 0.2, 3.0, -0.3,
                             0.05, 1.0, -0.02, 0.15, 0.4])
        indices, values = compressor.compress("w", gradient)
        assert set(indices) == {1, 3}
        assert set(np.abs(values)) == {5.0, 3.0}

    def test_residual_accumulates_unsent_mass(self):
        compressor = TopKCompressor(compress_ratio=0.25)
        gradient = np.array([4.0, 1.0, 0.5, 0.25])
        compressor.compress("w", gradient)
        # Unsent: 1.0, 0.5, 0.25 -> residual norm sqrt(1+.25+.0625).
        assert compressor.residual_norm("w") == pytest.approx(
            np.sqrt(1.3125))

    def test_error_feedback_eventually_sends_everything(self):
        # A small persistent component must not be suppressed forever:
        # after enough steps its accumulated residual wins the top-k.
        compressor = TopKCompressor(compress_ratio=0.25)
        sent_to_small = 0.0
        for _ in range(20):
            gradient = np.array([1.0, 0.1, 0.0, 0.0])
            indices, values = compressor.compress("w", gradient)
            if 1 in indices:
                sent_to_small += values[list(indices).index(1)]
        assert sent_to_small > 0.5

    def test_at_least_one_element_always_sent(self):
        compressor = TopKCompressor(compress_ratio=0.001)
        indices, values = compressor.compress("w", np.ones(10))
        assert len(indices) == 1

    def test_ratio_validation(self):
        with pytest.raises(ReproError):
            TopKCompressor(compress_ratio=0.0)
        with pytest.raises(ReproError):
            TopKCompressor(compress_ratio=1.5)

    @settings(max_examples=30, deadline=None)
    @given(
        size=st.integers(4, 200),
        ratio=st.floats(0.01, 1.0),
        seed=st.integers(0, 1000),
    )
    def test_property_conservation(self, size, ratio, seed):
        # sent + residual == corrected gradient, exactly.
        rng = np.random.default_rng(seed)
        gradient = rng.normal(size=size)
        compressor = TopKCompressor(compress_ratio=ratio)
        indices, values = compressor.compress("w", gradient)
        reconstructed = np.zeros(size)
        reconstructed[indices] = values
        reconstructed += compressor._residuals["w"]
        np.testing.assert_allclose(reconstructed, gradient, atol=1e-12)


class TestSparseAllreduce:
    def test_matches_dense_mean_when_ratio_is_one(self):
        rng = np.random.default_rng(0)
        grads = [rng.normal(size=16) for _ in range(3)]
        compressors = [TopKCompressor(1.0) for _ in range(3)]
        contributions = [c.compress("w", g)
                         for c, g in zip(compressors, grads)]
        dense = sparse_allreduce(contributions, 16)
        np.testing.assert_allclose(dense, np.mean(grads, axis=0),
                                   atol=1e-12)

    def test_duplicate_indices_accumulate(self):
        result = sparse_allreduce(
            [(np.array([2, 5]), np.array([1.0, 2.0])),
             (np.array([2]), np.array([3.0]))],
            dense_size=8, average=False)
        assert result[2] == pytest.approx(4.0)
        assert result[5] == pytest.approx(2.0)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ReproError):
            sparse_allreduce([(np.array([99]), np.array([1.0]))], 10)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ReproError):
            sparse_allreduce([(np.array([1, 2]), np.array([1.0]))], 10)


class TestWireBytes:
    def test_sparse_cheaper_than_dense_at_small_ratio(self):
        elements = 1_000_000
        dense_bytes = 2 * 4 * elements  # ring all-reduce volume
        sparse = sparse_wire_bytes(elements, 0.001, world_size=16)
        assert sparse < dense_bytes / 10

    def test_sparse_loses_at_large_ratio_and_scale(self):
        elements = 1_000_000
        dense_bytes = 2 * 4 * elements
        sparse = sparse_wire_bytes(elements, 0.1, world_size=64)
        assert sparse > dense_bytes

    def test_bytes_formula(self):
        assert sparse_wire_bytes(1000, 0.01, 9) == \
            8 * 10 * BYTES_PER_SPARSE_ELEMENT


class TestTrainStep:
    def test_workers_reach_identical_aggregate(self):
        rng = np.random.default_rng(1)
        grads = [{"w": rng.normal(size=(4, 4)), "b": rng.normal(size=4)}
                 for _ in range(3)]
        compressors = [TopKCompressor(0.5) for _ in range(3)]
        aggregated = train_step_with_topk(compressors, grads)
        assert aggregated["w"].shape == (4, 4)
        assert aggregated["b"].shape == (4,)

    def test_convergence_on_tiny_mlp(self):
        # Top-k with error feedback must still train the numeric MLP.
        from repro.training.numeric import TinyMLP, make_synthetic_task
        from repro.training.optimizer import SGD

        task = make_synthetic_task(num_samples=256, seed=5)
        model = TinyMLP(16, 16, 4, seed=6)
        workers = 2
        compressors = [TopKCompressor(0.25) for _ in range(workers)]
        optimizer = SGD(lr=0.2, momentum=0.9)
        losses = []
        for step in range(30):
            offset = (step * 32) % 224
            grads = []
            step_loss = 0.0
            for rank in range(workers):
                lo = offset + rank * 16
                loss, g = TinyMLP.loss_and_grads(
                    model.parameters, task.inputs[lo:lo + 16],
                    task.labels[lo:lo + 16])
                grads.append(g)
                step_loss += loss / workers
            aggregated = train_step_with_topk(compressors, grads)
            optimizer.step(model.parameters, aggregated)
            losses.append(step_loss)
        assert losses[-1] < losses[0] * 0.7

    def test_compressor_count_validated(self):
        with pytest.raises(ReproError):
            train_step_with_topk([TopKCompressor(0.5)],
                                 [{"w": np.zeros(4)}, {"w": np.zeros(4)}])
