"""Tests for the asynchronous partial-readiness flow (paper Fig. 8b).

Gradients arrive in arbitrary order per worker; a tensor is reduced only
once *every* worker has pushed it, while stragglers stay pending —
exactly the min-all-reduce semantics of §V-A.2.
"""

import numpy as np
import pytest

from repro.core.perseus import init
from repro.errors import RegistrationError, SynchronizationError


def make_session(size=3):
    session = init(size)
    session.register_parameters({"a": (4,), "b": (2, 2), "c": (3,)})
    return session


class TestPartialReadiness:
    def test_only_globally_ready_reduced(self):
        session = make_session(size=2)
        session.push_gradient(0, "a", np.ones(4))
        session.push_gradient(0, "b", np.ones((2, 2)))
        session.push_gradient(1, "a", np.full(4, 3.0))
        # 'a' is everywhere; 'b' only on rank 0.
        results, ready = session.reduce_ready()
        assert ready == ["a"]
        np.testing.assert_allclose(results[0]["a"], np.full(4, 2.0))
        np.testing.assert_allclose(results[1]["a"], np.full(4, 2.0))
        assert session.pending_counts() == [1, 0]

    def test_straggler_reduced_in_later_round(self):
        session = make_session(size=2)
        session.push_gradient(0, "b", np.ones((2, 2)))
        _, ready = session.reduce_ready()
        assert ready == []
        session.push_gradient(1, "b", np.full((2, 2), 5.0))
        results, ready = session.reduce_ready()
        assert ready == ["b"]
        np.testing.assert_allclose(results[0]["b"], np.full((2, 2), 3.0))
        assert session.pending_counts() == [0, 0]

    def test_arbitrary_order_equals_dense_step(self):
        rng = np.random.default_rng(0)
        grads = [
            {"a": rng.normal(size=4), "b": rng.normal(size=(2, 2)),
             "c": rng.normal(size=3)}
            for _ in range(3)
        ]
        async_session = make_session(size=3)
        # Push in scrambled, per-worker different orders.
        orders = [("c", "a", "b"), ("b", "c", "a"), ("a", "b", "c")]
        for rank, order in enumerate(orders):
            for name in order:
                async_session.push_gradient(rank, name, grads[rank][name])
        results, ready = async_session.reduce_ready()
        assert sorted(ready) == ["a", "b", "c"]

        dense_session = make_session(size=3)
        dense = dense_session.reduce_gradients(
            [{k: v.copy() for k, v in g.items()} for g in grads])
        for name in ("a", "b", "c"):
            np.testing.assert_allclose(results[0][name], dense[0][name],
                                       rtol=1e-6, atol=1e-7)

    def test_repeated_rounds_with_interleaving(self):
        session = make_session(size=2)
        for step in range(3):
            session.push_gradient(0, "a", np.full(4, float(step)))
            session.push_gradient(1, "a", np.full(4, float(step)))
            results, ready = session.reduce_ready()
            assert ready == ["a"]
            np.testing.assert_allclose(results[0]["a"],
                                       np.full(4, float(step)))

    def test_double_push_rejected(self):
        session = make_session(size=2)
        session.push_gradient(0, "a", np.ones(4))
        with pytest.raises(RegistrationError):
            session.push_gradient(0, "a", np.ones(4))

    def test_unknown_parameter_rejected(self):
        session = make_session()
        with pytest.raises(RegistrationError):
            session.push_gradient(0, "zzz", np.ones(1))

    def test_push_before_registration_rejected(self):
        session = init(2)
        with pytest.raises(RegistrationError):
            session.push_gradient(0, "a", np.ones(1))

    def test_bad_rank_rejected(self):
        session = make_session(size=2)
        with pytest.raises(RegistrationError):
            session.push_gradient(5, "a", np.ones(4))

    def test_dense_step_blocked_while_pending(self):
        session = make_session(size=2)
        session.push_gradient(0, "a", np.ones(4))
        dense = [{"a": np.ones(4), "b": np.ones((2, 2)),
                  "c": np.ones(3)} for _ in range(2)]
        with pytest.raises(SynchronizationError):
            session.reduce_gradients(dense)


def test_dense_then_async_flow_clean():
    """Switching from dense steps to the push flow must not mis-report."""
    session = make_session(size=2)
    dense = [{"a": np.ones(4), "b": np.ones((2, 2)), "c": np.ones(3)}
             for _ in range(2)]
    session.reduce_gradients(dense)
    # Nothing pushed yet: nothing may be "ready".
    results, ready = session.reduce_ready()
    assert ready == []
    session.push_gradient(0, "c", np.ones(3))
    session.push_gradient(1, "c", np.ones(3))
    results, ready = session.reduce_ready()
    assert ready == ["c"]
