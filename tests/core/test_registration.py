"""Tests for gradient registration and the synchronization vector."""

import numpy as np
import pytest

from repro.core.registration import GradientRegistry
from repro.errors import RegistrationError
from repro.models import ParameterSpec, get_model


def make_registry(names=("b", "a", "c")):
    registry = GradientRegistry()
    for index, name in enumerate(names):
        registry.register(ParameterSpec(name, 10 + index))
    registry.freeze()
    return registry


class TestRegistration:
    def test_ids_follow_sorted_name_order(self):
        registry = make_registry(("b", "a", "c"))
        assert registry.grad_id("a") == 0
        assert registry.grad_id("b") == 1
        assert registry.grad_id("c") == 2

    def test_identical_ids_across_workers_regardless_of_order(self):
        # The decentralized scheme relies on workers agreeing on ids
        # without coordination (paper §V-A.1).
        first = make_registry(("x", "y", "z"))
        second = make_registry(("z", "x", "y"))
        for name in ("x", "y", "z"):
            assert first.grad_id(name) == second.grad_id(name)

    def test_duplicate_registration_rejected(self):
        registry = GradientRegistry()
        registry.register(ParameterSpec("w", 5))
        with pytest.raises(RegistrationError):
            registry.register(ParameterSpec("w", 5))

    def test_register_after_freeze_rejected(self):
        registry = make_registry()
        with pytest.raises(RegistrationError):
            registry.register(ParameterSpec("late", 3))

    def test_freeze_twice_rejected(self):
        registry = make_registry()
        with pytest.raises(RegistrationError):
            registry.freeze()

    def test_freeze_empty_rejected(self):
        with pytest.raises(RegistrationError):
            GradientRegistry().freeze()

    def test_unknown_name_rejected(self):
        registry = make_registry()
        with pytest.raises(RegistrationError):
            registry.grad_id("missing")

    def test_use_before_freeze_rejected(self):
        registry = GradientRegistry()
        registry.register(ParameterSpec("w", 5))
        with pytest.raises(RegistrationError):
            registry.grad_id("w")

    def test_register_model(self):
        registry = GradientRegistry()
        model = get_model("resnet50")
        registry.register_model(model)
        registry.freeze()
        assert len(registry) == model.num_gradients

    def test_spec_by_id_roundtrip(self):
        registry = make_registry()
        for name in ("a", "b", "c"):
            grad_id = registry.grad_id(name)
            assert registry.spec_by_id(grad_id).name == name

    def test_spec_by_id_out_of_range(self):
        registry = make_registry()
        with pytest.raises(RegistrationError):
            registry.spec_by_id(99)

    def test_ordered_specs(self):
        registry = make_registry(("b", "a"))
        assert [s.name for s in registry.ordered_specs()] == ["a", "b"]


class TestSyncVector:
    def test_vector_starts_zeroed(self):
        registry = make_registry()
        np.testing.assert_array_equal(registry.sync_vector, [0, 0, 0])

    def test_mark_ready_sets_bit(self):
        registry = make_registry()
        grad_id = registry.mark_ready("b")
        assert registry.sync_vector[grad_id] == 1
        assert registry.sync_vector.sum() == 1

    def test_reset_vector(self):
        registry = make_registry()
        registry.mark_ready("a")
        registry.mark_ready("c")
        registry.reset_vector()
        np.testing.assert_array_equal(registry.sync_vector, [0, 0, 0])

    def test_vector_dtype_is_bitwise(self):
        registry = make_registry()
        assert registry.sync_vector.dtype == np.uint8
