"""Failure detection in the AIACC core (sync deadlines, unit timeouts,
stalled collectives, engine abort)."""

import pytest

from repro.core.registration import GradientRegistry
from repro.core.runtime import AIACCConfig
from repro.core.streams import CommStreamPool
from repro.core.synchronization import DecentralizedSynchronizer
from repro.errors import (
    PeerDeadError,
    ProcessInterrupt,
    ReproError,
    SyncTimeoutError,
)
from repro.models import ParameterSpec
from repro.sim import Communicator, FluidNetwork, Simulator
from repro.sim.cuda import GPUDevice, V100
from repro.sim.topology import Cluster, NodeSpec
from repro.sim.tracing import Trace
from repro.collectives.timed import TimedCollectives


def frozen_registry(names=("a", "b")):
    registry = GradientRegistry()
    for name in names:
        registry.register(ParameterSpec(name, 4))
    registry.freeze()
    for name in names:
        registry.mark_ready(name)
    return registry


class TestConfigValidation:
    def test_detection_fields_default_off(self):
        config = AIACCConfig()
        assert config.sync_timeout_s is None
        assert config.unit_timeout_s is None
        assert config.comm_retries == 2
        assert config.retry_backoff_s == 0.5

    @pytest.mark.parametrize("field,value", [
        ("sync_timeout_s", 0.0),
        ("sync_timeout_s", -1.0),
        ("unit_timeout_s", 0.0),
        ("comm_retries", -1),
        ("retry_backoff_s", -0.1),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ReproError):
            AIACCConfig(**{field: value})

    def test_valid_detection_config(self):
        config = AIACCConfig(sync_timeout_s=1.0, unit_timeout_s=2.0,
                             comm_retries=0, retry_backoff_s=0.0)
        assert config.sync_timeout_s == 1.0


class TestSyncRoundTimeout:
    def test_missing_peer_raises_sync_timeout(self):
        """A rank whose ring peers never show up misses the deadline."""
        sim = Simulator()
        comm = Communicator(sim, size=2)
        sync = DecentralizedSynchronizer(sim, comm, rank=0,
                                         registry=frozen_registry())
        proc = sim.spawn(sync.sync_round(timeout_s=0.5))
        proc.add_callback(lambda _ev: None)
        sim.run(until=proc)
        assert not proc.ok
        error = proc.value
        assert isinstance(error, SyncTimeoutError)
        assert error.rank == 0
        assert error.round_index == 0
        assert error.deadline_s == 0.5
        assert sim.now == pytest.approx(0.5)

    def test_timeout_interrupts_ring_worker(self):
        """The timed-out worker must be torn down, not abandoned.

        An abandoned worker stays alive consuming this round's tags and
        peer messages, which collide with the retry round's exchanges.
        """
        sim = Simulator()
        comm = Communicator(sim, size=2)
        sync = DecentralizedSynchronizer(sim, comm, rank=0,
                                         registry=frozen_registry())
        proc = sim.spawn(sync.sync_round(timeout_s=0.5))
        proc.add_callback(lambda _ev: None)
        sim.run(until=proc)
        assert isinstance(proc.value, SyncTimeoutError)
        sim.run()
        # No leftover getter: an interrupted receiver withdraws its
        # pending recv, so a late peer message cannot be stolen.
        assert all(not waiting for waiting in comm._waiting.values())

    def test_retry_round_works_after_timeout(self):
        """After rank 0 times out alone, a full retry round succeeds."""
        sim = Simulator()
        comm = Communicator(sim, size=2)
        registries = [frozen_registry(), frozen_registry()]
        syncs = [DecentralizedSynchronizer(sim, comm, rank, registries[rank])
                 for rank in range(2)]
        failed = sim.spawn(syncs[0].sync_round(timeout_s=0.5))
        failed.add_callback(lambda _ev: None)
        sim.run(until=failed)
        assert isinstance(failed.value, SyncTimeoutError)
        # Keep the round numbers aligned: rank 1 burns its round 0 too
        # (its worker sits waiting, as a slow-but-alive peer would).
        burn = sim.spawn(syncs[1].sync_round(timeout_s=0.5))
        burn.add_callback(lambda _ev: None)
        sim.run(until=burn)
        retry = [sim.spawn(s.sync_round(timeout_s=60.0)) for s in syncs]
        sim.run(until=sim.all_of(retry))
        for proc in retry:
            assert proc.ok
            assert list(proc.value) == [0, 1]

    def test_healthy_round_unaffected_by_deadline(self):
        sim = Simulator()
        comm = Communicator(sim, size=2)
        procs = []
        for rank in range(2):
            sync = DecentralizedSynchronizer(sim, comm, rank=rank,
                                             registry=frozen_registry())
            procs.append(sim.spawn(sync.sync_round(timeout_s=60.0)))
        sim.run(until=sim.all_of(procs))
        for proc in procs:
            assert proc.ok
            assert list(proc.value) == [0, 1]


class TestStalledCollectives:
    def make(self, num_nodes=2):
        sim = Simulator()
        cluster = Cluster(sim, num_nodes, NodeSpec(gpus_per_node=2))
        network = FluidNetwork(sim)
        trace = Trace(enabled=True)
        collectives = TimedCollectives(sim, network, cluster, trace=trace,
                                       representative=False)
        return sim, cluster, collectives, trace

    def test_allreduce_hangs_when_node_dead(self):
        sim, cluster, collectives, trace = self.make()
        cluster.fail_node(1)
        done = collectives.allreduce(1e6)
        sim.run(until=sim.timeout(120.0))
        assert not done.triggered
        assert trace.counters["aiacc.faults.stalled_collectives"] == 1

    def test_control_roundtrip_hangs_when_node_dead(self):
        sim, cluster, collectives, _ = self.make()
        cluster.fail_node(0)
        done = collectives.control_roundtrip()
        sim.run(until=sim.timeout(120.0))
        assert not done.triggered

    def test_broadcast_hangs_when_node_dead(self):
        sim, cluster, collectives, _ = self.make()
        cluster.fail_node(1)
        done = collectives.broadcast(1e6)
        sim.run(until=sim.timeout(120.0))
        assert not done.triggered

    def test_collectives_resume_after_restore(self):
        sim, cluster, collectives, _ = self.make()
        cluster.fail_node(1)
        cluster.restore_node(1)
        done = collectives.allreduce(1e6)
        sim.run(until=done)
        assert done.triggered


class TestStreamPoolInterrupts:
    def test_interrupt_while_running_releases_streams(self):
        sim = Simulator()
        pool = CommStreamPool(sim, GPUDevice(V100), num_streams=4,
                              compute_occupancy=0.0)

        def never():
            return sim.event(name="hung-allreduce")

        proc = sim.spawn(pool.run_unit(never, streams=2))
        proc.add_callback(lambda _ev: None)
        sim.run(until=sim.timeout(1.0))
        assert pool.in_flight == 2
        proc.interrupt("abort")
        sim.run(until=proc)
        assert not proc.ok
        assert pool.in_flight == 0

    def test_interrupt_while_queued_withdraws_request(self):
        sim = Simulator()
        pool = CommStreamPool(sim, GPUDevice(V100), num_streams=1,
                              compute_occupancy=0.0)

        def never():
            return sim.event(name="hung")

        first = sim.spawn(pool.run_unit(never))
        first.add_callback(lambda _ev: None)
        queued = sim.spawn(pool.run_unit(never))
        queued.add_callback(lambda _ev: None)
        sim.run(until=sim.timeout(1.0))
        assert pool.in_flight == 1
        queued.interrupt("abort")
        sim.run(until=queued)
        assert not queued.ok
        assert isinstance(queued.value, ProcessInterrupt)
        # The withdrawn request must not hold or later consume a slot.
        first.interrupt("abort")
        sim.run()
        assert pool.in_flight == 0


class TestEngineDetection:
    def run_iteration_with_crash(self, crash_at_s, sync_timeout_s=0.5,
                                 comm_retries=1):
        from repro.core.engine import AIACCBackend
        from repro.models.synthetic import random_model_spec
        from repro.sim.faults import FaultInjector, FaultPlan, NodeCrash
        from repro.training.trainer import build_train_context

        spec = random_model_spec(seed=0, num_layers=8,
                                 total_parameters=2_000_000,
                                 total_forward_flops=1e9)
        backend = AIACCBackend(AIACCConfig(
            sync_timeout_s=sync_timeout_s, unit_timeout_s=1.0,
            comm_retries=comm_retries, retry_backoff_s=0.1))
        trace = Trace(enabled=True)
        ctx = build_train_context(spec, backend, 16,
                                  spec.default_batch_size,
                                  trace=trace, representative=False)
        injector = FaultInjector(ctx.sim, ctx.cluster, ctx.network,
                                 trace=trace)
        injector.arm(FaultPlan([NodeCrash(at_s=crash_at_s, node=1)]))
        warm = ctx.sim.spawn(backend.warmup(ctx))
        ctx.sim.run(until=warm)
        proc = ctx.sim.spawn(backend.iteration(ctx))
        proc.add_callback(lambda _ev: None)
        ctx.sim.run(until=proc)
        return backend, ctx, proc, trace

    def test_crash_mid_iteration_confirms_peer_dead(self):
        backend, ctx, proc, trace = self.run_iteration_with_crash(
            crash_at_s=0.02)
        assert not proc.ok
        failure = proc.value
        assert isinstance(failure, PeerDeadError)
        assert failure.confirmed_at_s > failure.suspected_at_s
        assert trace.counters["aiacc.faults.suspect"] >= 1
        assert trace.counters["aiacc.faults.confirm"] >= 1

    def test_abort_clears_inflight_units(self):
        backend, ctx, proc, _ = self.run_iteration_with_crash(
            crash_at_s=0.02)
        interrupted = backend.abort("rebuilding")
        assert interrupted >= 0
        assert not backend._inflight
        # The simulator must stay consistent after the abort.
        ctx.sim.run(until=ctx.sim.timeout(1.0))

    def test_healthy_iteration_with_detection_enabled(self):
        backend, ctx, proc, trace = self.run_iteration_with_crash(
            crash_at_s=1e9)  # never fires
        assert proc.ok
        assert trace.counters.get("aiacc.faults.suspect", 0) == 0
