"""Tests for decentralized bit-vector gradient synchronization."""

import numpy as np
import pytest

from repro.core.registration import GradientRegistry
from repro.core.synchronization import (
    DecentralizedSynchronizer,
    synchronize_all,
)
from repro.errors import SynchronizationError
from repro.models import ParameterSpec
from repro.sim import Communicator, Simulator


def registry_with(ready_names, all_names=("a", "b", "c", "d")):
    registry = GradientRegistry()
    for name in all_names:
        registry.register(ParameterSpec(name, 4))
    registry.freeze()
    for name in ready_names:
        registry.mark_ready(name)
    return registry


class TestSynchronizeAll:
    def test_all_ready_everywhere(self):
        registries = [registry_with(("a", "b", "c", "d")) for _ in range(3)]
        for view in synchronize_all(registries):
            np.testing.assert_array_equal(view, [0, 1, 2, 3])

    def test_min_semantics_partial_readiness(self):
        # Gradient ready only where EVERY worker has produced it (§V-A.2).
        registries = [
            registry_with(("a", "b", "c")),
            registry_with(("a", "c", "d")),
            registry_with(("a", "c")),
        ]
        for view in synchronize_all(registries):
            np.testing.assert_array_equal(view, [0, 2])  # ids of a, c

    def test_nothing_ready(self):
        registries = [registry_with(()) for _ in range(2)]
        for view in synchronize_all(registries):
            assert len(view) == 0

    def test_single_worker(self):
        registries = [registry_with(("b",))]
        np.testing.assert_array_equal(synchronize_all(registries)[0], [1])

    def test_all_workers_see_identical_view(self):
        registries = [
            registry_with(("a", "d")),
            registry_with(("d", "a", "b")),
        ]
        views = synchronize_all(registries)
        np.testing.assert_array_equal(views[0], views[1])

    def test_empty_rejected(self):
        with pytest.raises(SynchronizationError):
            synchronize_all([])

    def test_mismatched_parameter_counts_rejected(self):
        registries = [
            registry_with((), all_names=("a", "b")),
            registry_with((), all_names=("a", "b", "c")),
        ]
        with pytest.raises(SynchronizationError):
            synchronize_all(registries)


class TestSynchronizerRounds:
    def test_multiple_rounds_with_changing_readiness(self):
        sim = Simulator()
        comm = Communicator(sim, size=2)
        registries = [registry_with(()), registry_with(())]
        syncs = [DecentralizedSynchronizer(sim, comm, rank, registry)
                 for rank, registry in enumerate(registries)]

        results = []

        def worker(rank):
            registries[rank].mark_ready("a")
            first = yield sim.spawn(syncs[rank].sync_round())
            registries[rank].mark_ready("c")
            second = yield sim.spawn(syncs[rank].sync_round())
            results.append((rank, list(first), list(second)))

        processes = [sim.spawn(worker(rank)) for rank in range(2)]
        sim.run(until=sim.all_of(processes))
        assert sorted(results) == [
            (0, [0], [0, 2]),
            (1, [0], [0, 2]),
        ]

    def test_unfrozen_registry_rejected(self):
        sim = Simulator()
        comm = Communicator(sim, size=1)
        registry = GradientRegistry()
        registry.register(ParameterSpec("w", 1))
        with pytest.raises(SynchronizationError):
            DecentralizedSynchronizer(sim, comm, 0, registry)
