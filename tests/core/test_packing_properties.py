"""Property-based tests for gradient packing (paper §V).

The packer may slice and merge arbitrarily, but over any random workload
it must preserve four properties:

1. **round-trip** — ``unpack(pack(grads))`` recovers every gradient's
   exact byte count, and never raises the contiguity error;
2. **density** — every emitted unit except possibly the last is full to
   the granularity (within the documented float epsilon), so the unit
   count is the information-theoretic minimum;
3. **order invariance** — packing is a function of the gradient *set*:
   any permutation of the input yields the identical unit sequence
   (workers must agree on communication order without coordination);
4. **conservation** — no bytes are created, dropped or duplicated, and
   no slice strays outside its gradient's extent.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packing import GradientPacker, unpack


@st.composite
def workloads(draw):
    granularity = draw(st.integers(1, 5_000))
    sizes = draw(st.lists(st.integers(1, 20_000), min_size=1, max_size=20))
    return float(granularity), [(grad_id, float(size))
                                for grad_id, size in enumerate(sizes)]


class TestPackingProperties:
    @settings(max_examples=200, deadline=None)
    @given(workload=workloads())
    def test_pack_unpack_round_trip(self, workload):
        granularity, gradients = workload
        units = GradientPacker(granularity).pack(gradients)
        totals = unpack(units)
        assert totals == dict(gradients)

    @settings(max_examples=200, deadline=None)
    @given(workload=workloads())
    def test_units_are_dense(self, workload):
        granularity, gradients = workload
        units = GradientPacker(granularity).pack(gradients)
        for unit in units[:-1]:
            assert unit.nbytes >= granularity * (1 - 1e-9)
            assert unit.nbytes <= granularity * (1 + 1e-9)
        total = sum(size for _, size in gradients)
        assert len(units) == math.ceil(total / granularity - 1e-9)

    @settings(max_examples=100, deadline=None)
    @given(workload=workloads(), seed=st.randoms(use_true_random=False))
    def test_input_order_is_irrelevant(self, workload, seed):
        granularity, gradients = workload
        shuffled = list(gradients)
        seed.shuffle(shuffled)
        baseline = GradientPacker(granularity).pack(gradients)
        permuted = GradientPacker(granularity).pack(shuffled)
        assert baseline == permuted

    @settings(max_examples=200, deadline=None)
    @given(workload=workloads())
    def test_bytes_conserved_and_slices_in_bounds(self, workload):
        granularity, gradients = workload
        sizes = dict(gradients)
        units = GradientPacker(granularity).pack(gradients)
        packed = 0.0
        for unit in units:
            assert unit.slices
            for piece in unit.slices:
                assert piece.nbytes > 0
                assert piece.offset >= 0
                assert piece.offset + piece.nbytes <= \
                    sizes[piece.grad_id] * (1 + 1e-9)
                packed += piece.nbytes
        assert packed == sum(sizes.values())

    @settings(max_examples=100, deadline=None)
    @given(workload=workloads())
    def test_unit_ids_sequential_and_slices_id_ordered(self, workload):
        granularity, gradients = workload
        units = GradientPacker(granularity).pack(gradients)
        assert [u.unit_id for u in units] == list(range(len(units)))
        emitted = [(s.grad_id, s.offset) for u in units for s in u.slices]
        assert emitted == sorted(emitted)
