"""Unit tests for admission control (`repro.cluster.scheduler`)."""

import pytest

from repro.cluster import (
    BACKOFF_CAP_S,
    JobSpec,
    PlacementScheduler,
    SharedFabric,
    backoff_delay_s,
)
from repro.errors import ClusterError
from repro.sim import Simulator


def make_fabric(num_nodes=6, nic_bps=10e9, oversub=2.0):
    return SharedFabric(Simulator(), num_nodes, nic_bps=nic_bps,
                        core_oversubscription=oversub)


def spec(job_id="j", **kw):
    kw.setdefault("batch_size", kw.get("num_nodes", 2) * 16)
    return JobSpec(job_id=job_id, **kw)


class TestBackoff:
    def test_capped_exponential_schedule(self):
        delays = [backoff_delay_s(i) for i in range(7)]
        assert delays == [0.25, 0.5, 1.0, 2.0, 4.0, 4.0, 4.0]
        assert max(delays) == BACKOFF_CAP_S

    def test_negative_attempt_rejected(self):
        with pytest.raises(ClusterError):
            backoff_delay_s(-1)


class TestJobSpecValidation:
    def test_valid_spec_constructs(self):
        spec("ok", num_nodes=2, batch_size=64)

    @pytest.mark.parametrize("kw", [
        dict(job_id=""),
        dict(num_nodes=0),
        dict(priority=0.0),
        dict(arrival_s=-1.0),
        dict(steps=0),
        dict(num_streams=0),
        dict(compute_s=0.0),
        dict(bytes_per_step=0.0),
        dict(num_nodes=3, batch_size=64),  # not divisible
    ])
    def test_invalid_specs_rejected(self, kw):
        base = dict(job_id="j")
        base.update(kw)
        with pytest.raises(ClusterError):
            JobSpec(**base)


class TestPlacementScheduler:
    def test_deterministic_ascending_placement(self):
        sched = PlacementScheduler(make_fabric(6))
        a, reason = sched.try_admit(spec("a", num_nodes=2), streams=2)
        b, _ = sched.try_admit(spec("b", num_nodes=3), streams=2)
        assert reason == "admitted"
        assert a.nodes == (0, 1)
        assert b.nodes == (2, 3, 4)
        assert sched.free_nodes == (5,)

    def test_release_returns_slots_in_order(self):
        sched = PlacementScheduler(make_fabric(4))
        sched.try_admit(spec("a", num_nodes=2), streams=1)
        sched.try_admit(spec("b", num_nodes=2), streams=1)
        sched.release("a")
        assert sched.free_nodes == (0, 1)
        again, _ = sched.try_admit(spec("c", num_nodes=2), streams=1)
        assert again.nodes == (0, 1)

    def test_slot_exhaustion_reason(self):
        sched = PlacementScheduler(make_fabric(4))
        sched.try_admit(spec("a", num_nodes=3), streams=1)
        placement, reason = sched.try_admit(spec("b", num_nodes=2),
                                            streams=1)
        assert placement is None
        assert "free nodes" in reason

    def test_oversized_job_reason(self):
        sched = PlacementScheduler(make_fabric(2))
        placement, reason = sched.try_admit(spec("big", num_nodes=8),
                                            streams=1)
        assert placement is None
        assert "only has 2" in reason

    def test_core_budget_exhaustion(self):
        # 4-node fabric, 4x oversubscribed: core = 4*10G/4 = 10 Gbps.
        # Each 2-node tenant at full NIC demands 20 Gbps of spine.
        sched = PlacementScheduler(make_fabric(4, oversub=4.0))
        placement, reason = sched.try_admit(
            spec("greedy", num_nodes=2, num_streams=8), streams=8)
        assert placement is None
        assert "core budget exhausted" in reason

    def test_shrink_reservation_reprices_demand(self):
        fabric = make_fabric(6)
        sched = PlacementScheduler(fabric)
        job = spec("a", num_nodes=2, num_streams=4)
        sched.try_admit(job, streams=4)
        before = sched.reserved_core_bps()
        sched.shrink_reservation("a", streams=1, spec=job)
        assert sched.reserved_core_bps() < before

    def test_double_admit_and_unknown_release_rejected(self):
        sched = PlacementScheduler(make_fabric(6))
        job = spec("a", num_nodes=2)
        sched.try_admit(job, streams=1)
        with pytest.raises(ClusterError):
            sched.try_admit(job, streams=1)
        with pytest.raises(ClusterError):
            sched.release("nobody")
        with pytest.raises(ClusterError):
            sched.shrink_reservation("nobody", streams=1, spec=job)
