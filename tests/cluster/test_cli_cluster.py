"""CLI tests for `python -m repro cluster` (the CI smoke entry point)."""

import json

from repro.cli import main
from repro.cluster import three_job_scenario


class TestClusterCli:
    def test_smoke_with_checks_exits_zero(self, capsys):
        assert main(["cluster", "--check-isolation",
                     "--check-replay"]) == 0
        out = capsys.readouterr().out
        assert "cluster digest:" in out
        assert "identical" in out
        assert "digests match" in out

    def test_json_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "cluster.json"
        assert main(["cluster", "--json", str(artifact)]) == 0
        payload = json.loads(artifact.read_text())
        assert set(payload) >= {"jobs", "findings", "cluster_digest",
                                "findings_digest"}
        assert payload["jobs"]["jobA"]["status"] == "completed"

    def test_expect_digest_mismatch_fails(self, capsys):
        assert main(["cluster", "--expect-digest", "deadbeef"]) == 1
        captured = capsys.readouterr()
        assert "deadbeef" in captured.out + captured.err

    def test_expect_digest_match_passes(self, capsys):
        digest = three_job_scenario(chaos=True).run().cluster_digest
        assert main(["cluster", "--expect-digest", digest]) == 0
