"""End-to-end tests for the multi-tenant runtime (`repro.cluster`).

The acceptance contract of ISSUE 10: in the committed 3-job scenario,
chaos on tenant A walks the full degradation ladder with typed findings
while tenants B and C finish with numeric digests bit-identical to the
chaos-free shared run, and the whole run replays to a pinned
``cluster_digest``.
"""

import pytest

from repro.autotune.cache import SettingsCache
from repro.cluster import (
    ClusterConfig,
    ClusterRuntime,
    JobSpec,
    three_job_scenario,
)
from repro.errors import AdmissionRejected, ClusterError
from repro.sim.faults import FaultPlan, NodeCrash


def small_config(**overrides):
    base = dict(num_nodes=4, admission_deadline_s=2.0)
    base.update(overrides)
    return ClusterConfig(**base)


class TestScenarioLadder:
    @pytest.fixture(scope="class")
    def chaos_result(self):
        return three_job_scenario(chaos=True).run()

    def test_all_tenants_complete(self, chaos_result):
        for job_id in ("jobA", "jobB", "jobC"):
            assert chaos_result.jobs[job_id]["status"] == "completed"

    def test_victim_walks_the_full_ladder(self, chaos_result):
        job_a = chaos_result.jobs["jobA"]
        assert job_a["ladder_stage"] == 3
        kinds = [t["kind"] for t in job_a["transitions"]]
        assert kinds == ["preempt", "resume"]
        finding_kinds = {f.kind for f in chaos_result.findings
                         if dict(f.evidence).get("job") == "jobA"}
        assert {"job-slo-breach", "degrade-streams", "degrade-caps",
                "preempt", "resume", "job-crash",
                "interference"} <= finding_kinds

    def test_neighbors_stay_clean(self, chaos_result):
        for job_id in ("jobB", "jobC"):
            job = chaos_result.jobs[job_id]
            assert job["ladder_stage"] == 0
            assert job["transitions"] == []
        victim_kinds = {"degrade-streams", "degrade-caps", "preempt"}
        for finding in chaos_result.findings:
            if finding.kind in victim_kinds:
                assert dict(finding.evidence)["job"] == "jobA"

    def test_findings_sorted_and_typed(self, chaos_result):
        records = [f.record() for f in chaos_result.findings]
        assert all(r["component"] == "cluster" for r in records)
        keys = [(-int(f.severity), f.component, f.kind, f.subject,
                 f.time_s) for f in chaos_result.findings]
        assert keys == sorted(keys)


class TestIsolation:
    def test_chaos_on_a_never_touches_b_and_c_numerics(self):
        with_chaos = three_job_scenario(chaos=True).run()
        without = three_job_scenario(chaos=False).run()
        for job_id in ("jobA", "jobB", "jobC"):
            assert with_chaos.job_digest(job_id) == \
                without.job_digest(job_id)
        # The runs themselves differ (timings, findings): the isolation
        # is in the numerics, not a vacuous no-op.
        assert with_chaos.cluster_digest != without.cluster_digest

    def test_replay_determinism(self):
        first = three_job_scenario(chaos=True).run()
        second = three_job_scenario(chaos=True).run()
        assert first.cluster_digest == second.cluster_digest
        assert first.findings_digest == second.findings_digest

    def test_unknown_job_digest_rejected(self):
        result = three_job_scenario(chaos=False).run()
        with pytest.raises(ClusterError):
            result.job_digest("ghost")

    def test_pinned_golden_cluster_digest(self):
        # The CI cluster-smoke gate pins the same value; re-capture
        # with `python -m repro cluster` after an intentional change
        # to the scenario, the fabric or the degradation policy.
        result = three_job_scenario(chaos=True).run()
        assert result.cluster_digest == \
            "aea42149d0d935ce8d2d84bb3ca89582"


class TestAdmission:
    def test_oversized_job_is_rejected_with_typed_finding(self):
        runtime = ClusterRuntime(
            [JobSpec(job_id="big", num_nodes=8, steps=2)],
            config=small_config())
        result = runtime.run()
        job = result.jobs["big"]
        assert job["status"] == "rejected"
        assert "rejected after" in job["rejection"]
        rejected = [f for f in result.findings
                    if f.kind == "admission-rejected"]
        assert len(rejected) == 1
        assert dict(rejected[0].evidence)["job"] == "big"

    def test_queued_job_admitted_when_slots_free(self):
        runtime = ClusterRuntime(
            [JobSpec(job_id="first", num_nodes=4, steps=2,
                     num_streams=1, compute_s=0.01, bytes_per_step=1e6),
             JobSpec(job_id="second", num_nodes=4, arrival_s=0.01,
                     steps=2, num_streams=1, compute_s=0.01,
                     bytes_per_step=1e6)],
            config=small_config(admission_deadline_s=30.0))
        result = runtime.run()
        assert result.jobs["first"]["status"] == "completed"
        assert result.jobs["second"]["status"] == "completed"
        # The second tenant really queued: >1 attempt, admitted later.
        assert result.jobs["second"]["admission_attempts"] > 1
        assert result.jobs["second"]["admitted_at_s"] > \
            result.jobs["first"]["admitted_at_s"]

    def test_admission_rejected_carries_context(self):
        exc = AdmissionRejected("j1", 5.0, "no slots", 7)
        assert exc.job_id == "j1"
        assert exc.deadline_s == 5.0
        assert exc.attempts == 7
        assert "no slots" in str(exc)


class TestRuntimeValidation:
    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(ClusterError):
            ClusterRuntime([JobSpec(job_id="a"), JobSpec(job_id="a")])

    def test_chaos_for_unknown_job_rejected(self):
        with pytest.raises(ClusterError):
            ClusterRuntime([JobSpec(job_id="a")],
                           chaos={"ghost": FaultPlan([])})

    def test_chaos_target_outside_job_membership_rejected(self):
        plan = FaultPlan([NodeCrash(at_s=1.0, node=5)])
        with pytest.raises(ClusterError):
            ClusterRuntime([JobSpec(job_id="a", num_nodes=2)],
                           chaos={"a": plan})

    def test_empty_schedule_rejected(self):
        with pytest.raises(ClusterError):
            ClusterRuntime([])


class TestWarmStart:
    def test_second_run_warm_starts_from_settings_cache(self):
        cache = SettingsCache()
        spec = dict(num_nodes=2, steps=2, compute_s=0.01,
                    bytes_per_step=1e6, num_streams=8)
        first = ClusterRuntime([JobSpec(job_id="pioneer", **spec)],
                               config=small_config(),
                               settings_cache=cache)
        first.run()
        second = ClusterRuntime([JobSpec(job_id="follower", **spec)],
                                config=small_config(),
                                settings_cache=cache)
        result = second.run()
        assert result.jobs["follower"]["warm_start"] == "pioneer"
        assert result.jobs["follower"]["streams"] == 8

    def test_cold_start_leaves_warm_start_unset(self):
        result = three_job_scenario(chaos=False).run()
        assert result.jobs["jobB"]["warm_start"] is None
