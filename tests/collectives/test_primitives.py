"""Tests for reduce operators and chunking helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.collectives import (
    ReduceOp,
    apply_op,
    chunk_bounds,
    concat_chunks,
    finalize_op,
    split_chunks,
)
from repro.errors import CollectiveError


class TestApplyOp:
    def test_sum(self):
        a = np.array([1.0, 2.0])
        b = np.array([3.0, 4.0])
        np.testing.assert_array_equal(apply_op(ReduceOp.SUM, a, b), [4.0, 6.0])

    def test_min_on_bit_vector(self):
        # The readiness-synchronization semantics from paper §V-A: a
        # gradient is globally ready only when every worker reports 1.
        a = np.array([1, 0, 1, 1], dtype=np.uint8)
        b = np.array([1, 1, 0, 1], dtype=np.uint8)
        np.testing.assert_array_equal(
            apply_op(ReduceOp.MIN, a, b), [1, 0, 0, 1])

    def test_max(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0, 4.0])
        np.testing.assert_array_equal(apply_op(ReduceOp.MAX, a, b), [3.0, 5.0])

    def test_prod(self):
        a = np.array([2.0, 3.0])
        b = np.array([4.0, 5.0])
        np.testing.assert_array_equal(
            apply_op(ReduceOp.PROD, a, b), [8.0, 15.0])

    def test_avg_accumulates_as_sum(self):
        a = np.array([1.0])
        b = np.array([3.0])
        np.testing.assert_array_equal(apply_op(ReduceOp.AVG, a, b), [4.0])
        np.testing.assert_array_equal(
            finalize_op(ReduceOp.AVG, np.array([4.0]), 2), [2.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CollectiveError):
            apply_op(ReduceOp.SUM, np.zeros(2), np.zeros(3))

    def test_finalize_noop_for_sum(self):
        data = np.array([4.0])
        np.testing.assert_array_equal(finalize_op(ReduceOp.SUM, data, 2), data)


class TestChunking:
    def test_even_split(self):
        assert chunk_bounds(6, 3) == [(0, 2), (2, 4), (4, 6)]

    def test_uneven_split_front_loaded(self):
        assert chunk_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_more_parts_than_elements(self):
        bounds = chunk_bounds(2, 4)
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_zero_total(self):
        assert chunk_bounds(0, 2) == [(0, 0), (0, 0)]

    def test_invalid_parts(self):
        with pytest.raises(CollectiveError):
            chunk_bounds(5, 0)

    def test_negative_total(self):
        with pytest.raises(CollectiveError):
            chunk_bounds(-1, 2)

    def test_split_requires_flat(self):
        with pytest.raises(CollectiveError):
            split_chunks(np.zeros((2, 2)), 2)

    @given(total=st.integers(0, 500), parts=st.integers(1, 32))
    def test_bounds_partition_exactly(self, total, parts):
        bounds = chunk_bounds(total, parts)
        assert len(bounds) == parts
        assert bounds[0][0] == 0
        assert bounds[-1][1] == total
        for (lo1, hi1), (lo2, hi2) in zip(bounds, bounds[1:]):
            assert hi1 == lo2
            assert hi1 >= lo1 and hi2 >= lo2
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1

    @given(data=st.lists(st.floats(allow_nan=False, allow_infinity=False),
                         max_size=100),
           parts=st.integers(1, 16))
    def test_split_concat_roundtrip(self, data, parts):
        array = np.array(data, dtype=np.float64)
        chunks = split_chunks(array, parts)
        np.testing.assert_array_equal(concat_chunks(chunks), array)
