"""Tests for timed collectives over the fluid network.

These verify the performance *mechanism* of the paper: one stream is capped
at the single-stream efficiency of the transport, while concurrent streams
approach the aggregate link capacity.
"""

import pytest

from repro.collectives import TimedCollectives, ring_volume_bytes
from repro.collectives.cost_model import CostParams, ring_allreduce_time_s
from repro.errors import CollectiveError
from repro.sim import FluidNetwork, Simulator, alibaba_v100_cluster
from repro.sim.topology import Cluster, NodeSpec


def make_context(num_gpus=16, **cluster_kwargs):
    sim = Simulator()
    net = FluidNetwork(sim)
    cluster = alibaba_v100_cluster(sim, num_gpus, **cluster_kwargs)
    return sim, net, TimedCollectives(sim, net, cluster), cluster


class TestRingTimed:
    def test_single_worker_is_free(self):
        sim, net, timed, _ = make_context(num_gpus=1)
        done = timed.allreduce(100e6)
        sim.run(until=done)
        assert sim.now == pytest.approx(0.0, abs=1e-9)

    def test_single_stream_capped_at_quarter_bandwidth(self):
        # 100 MB over 16 GPUs / 2 nodes; hop volume = 2*S*(n-1)/n.
        sim, net, timed, cluster = make_context(num_gpus=16)
        size = 100e6
        done = timed.allreduce(size)
        sim.run(until=done)
        hop_bits = ring_volume_bytes(size, 16) * 8
        cap = cluster.stream_cap_bps()  # 0.25 * 30 Gbps = 7.5 Gbps
        assert cap == pytest.approx(7.5e9)
        # NIC transfer dominates NVLink; duration >= hop_bits / cap.
        assert sim.now >= hop_bits / cap
        # ... and within 20% of it (latency terms are small at this size).
        assert sim.now == pytest.approx(hop_bits / cap, rel=0.2)

    def test_three_streams_cut_time_roughly_3x(self):
        size = 100e6

        def run_concurrent(k):
            sim, net, timed, _ = make_context(num_gpus=16)
            events = [timed.allreduce(size / k) for _ in range(k)]
            sim.run(until=sim.all_of(events))
            return sim.now

        one = run_concurrent(1)
        three = run_concurrent(3)
        # Same total bytes split over 3 concurrent streams: ~3x faster
        # (3 * 7.5 = 22.5 Gbps is still below the 28.8 Gbps aggregate).
        assert one / three == pytest.approx(3.0, rel=0.15)
        # A 5th stream exceeds the aggregate limit: speedup caps near
        # 28.8 / 7.5 = 3.84, short of the ideal 5.0.
        five = run_concurrent(5)
        assert one / five == pytest.approx(3.84, rel=0.15)
        assert one / five < 4.4

    def test_streams_saturate_at_aggregate_capacity(self):
        size = 120e6

        def run_concurrent(k):
            sim, net, timed, _ = make_context(num_gpus=16)
            events = [timed.allreduce(size / k) for _ in range(k)]
            sim.run(until=sim.all_of(events))
            return sim.now

        four = run_concurrent(4)
        twelve = run_concurrent(12)
        # 4 streams: 4*9=36 > 28.8 Gbps -> already saturated; 12 streams
        # can't go faster (only latency terms grow).
        assert twelve >= four * 0.85

    def test_duration_close_to_analytic_model(self):
        sim, net, timed, cluster = make_context(num_gpus=32)
        size = 64e6
        done = timed.allreduce(size)
        sim.run(until=done)
        params = CostParams(
            world_size=32, num_nodes=4,
            nic_stream_bps=cluster.stream_cap_bps(),
            nic_total_bps=cluster.nic_out[0].capacity_bps,
            nvlink_bps=cluster.spec.gpu.nvlink_bps,
            inter_alpha_s=cluster.spec.transport.per_message_overhead_s,
        )
        analytic = ring_allreduce_time_s(size, params)
        assert sim.now == pytest.approx(analytic, rel=0.25)

    def test_single_node_uses_nvlink_only(self):
        sim, net, timed, cluster = make_context(num_gpus=8)
        size = 100e6
        done = timed.allreduce(size)
        sim.run(until=done)
        hop_bits = ring_volume_bytes(size, 8) * 8
        expected = hop_bits / cluster.spec.gpu.nvlink_bps
        assert sim.now == pytest.approx(expected, rel=0.3)
        # NVLink is ~40x faster than the NIC path.
        assert sim.now < 0.05

    def test_rejects_unknown_algorithm(self):
        sim, net, timed, _ = make_context()
        with pytest.raises(CollectiveError):
            timed.allreduce(1e6, algorithm="butterfly")

    def test_rejects_negative_size(self):
        sim, net, timed, _ = make_context()
        with pytest.raises(CollectiveError):
            timed.allreduce(-1)

    def test_event_value_is_duration(self):
        sim, net, timed, _ = make_context()
        done = timed.allreduce(10e6)
        sim.run(until=done)
        assert done.value == pytest.approx(sim.now)


class TestHierarchicalTimed:
    def test_uses_g_parallel_streams_inter_node(self):
        # With per-stream caps, the hierarchical inter-node phase uses g
        # streams and should beat a single-unit flat ring on large data.
        size = 200e6
        sim1, _, timed1, _ = make_context(num_gpus=16)
        d1 = timed1.allreduce(size, algorithm="ring")
        sim1.run(until=d1)
        ring_time = sim1.now

        sim2, _, timed2, _ = make_context(num_gpus=16)
        d2 = timed2.allreduce(size, algorithm="hierarchical")
        sim2.run(until=d2)
        hier_time = sim2.now
        assert hier_time < ring_time

    def test_single_node_degenerates_to_ring(self):
        sim, net, timed, _ = make_context(num_gpus=8)
        done = timed.allreduce(50e6, algorithm="hierarchical")
        sim.run(until=done)
        sim2, net2, timed2, _ = make_context(num_gpus=8)
        done2 = timed2.allreduce(50e6, algorithm="ring")
        sim2.run(until=done2)
        assert sim.now == pytest.approx(sim2.now)


class TestRepresentativeMode:
    def test_matches_full_simulation(self):
        size = 50e6
        sim1 = Simulator()
        net1 = FluidNetwork(sim1)
        cluster1 = alibaba_v100_cluster(sim1, 16)
        rep = TimedCollectives(sim1, net1, cluster1, representative=True)
        d1 = rep.allreduce(size)
        sim1.run(until=d1)

        sim2 = Simulator()
        net2 = FluidNetwork(sim2)
        cluster2 = alibaba_v100_cluster(sim2, 16)
        full = TimedCollectives(sim2, net2, cluster2, representative=False)
        d2 = full.allreduce(size)
        sim2.run(until=d2)
        assert sim1.now == pytest.approx(sim2.now, rel=1e-9)

    def test_representative_on_asymmetric_cluster_rejected(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        cluster = Cluster(sim, 4, NodeSpec(), congested_links={1: 0.5})
        with pytest.raises(CollectiveError):
            TimedCollectives(sim, net, cluster, representative=True)

    def test_congested_link_slows_full_ring(self):
        size = 50e6
        sim1 = Simulator()
        net1 = FluidNetwork(sim1)
        healthy = Cluster(sim1, 4, NodeSpec())
        d1 = TimedCollectives(sim1, net1, healthy).allreduce(size)
        sim1.run(until=d1)

        sim2 = Simulator()
        net2 = FluidNetwork(sim2)
        congested = Cluster(sim2, 4, NodeSpec(), congested_links={2: 0.3})
        d2 = TimedCollectives(sim2, net2, congested).allreduce(size)
        sim2.run(until=d2)
        assert sim2.now > sim1.now * 1.5


class TestControlPlane:
    def test_latency_grows_with_nodes(self):
        times = []
        for gpus in (16, 64, 256):
            sim, net, timed, _ = make_context(num_gpus=gpus)
            done = timed.control_roundtrip()
            sim.run(until=done)
            times.append(sim.now)
        assert times[0] < times[1] < times[2]

    def test_single_node_is_cheap(self):
        sim, net, timed, _ = make_context(num_gpus=8)
        done = timed.control_roundtrip()
        sim.run(until=done)
        assert sim.now < 1e-3


class TestTimedBroadcast:
    def test_multi_node_broadcast_time(self):
        sim, net, timed, cluster = make_context(num_gpus=16)
        size = 25e6  # ResNet-50 parameters, one fp32 copy
        done = timed.broadcast(size)
        sim.run(until=done)
        # One stream through the NIC at the 7.5 Gbps cap.
        assert sim.now == pytest.approx(size * 8 / 7.5e9, rel=0.2)
