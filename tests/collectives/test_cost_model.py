"""Tests for the analytic α-β cost models."""

import pytest

from repro.collectives.cost_model import (
    CostParams,
    broadcast_time_s,
    hierarchical_allreduce_time_s,
    ring_allreduce_time_s,
    ring_volume_bytes,
)
from repro.errors import CollectiveError


def params(world=32, nodes=4, stream=7.5e9, total=28.8e9):
    return CostParams(
        world_size=world, num_nodes=nodes,
        nic_stream_bps=stream, nic_total_bps=total,
        nvlink_bps=150e9 * 8, inter_alpha_s=25e-6,
    )


class TestRingVolume:
    def test_classic_formula(self):
        assert ring_volume_bytes(100, 4) == pytest.approx(150.0)

    def test_single_participant_free(self):
        assert ring_volume_bytes(100, 1) == 0.0

    def test_approaches_2s(self):
        assert ring_volume_bytes(100, 1000) == pytest.approx(200, rel=0.01)

    def test_invalid_participants(self):
        with pytest.raises(CollectiveError):
            ring_volume_bytes(100, 0)


class TestRingTime:
    def test_single_worker_free(self):
        assert ring_allreduce_time_s(1e6, params(world=1, nodes=1)) == 0.0

    def test_bandwidth_term_dominates_large_sizes(self):
        p = params()
        size = 100e6
        time = ring_allreduce_time_s(size, p)
        data_term = ring_volume_bytes(size, 32) * 8 / 7.5e9
        assert time == pytest.approx(data_term, rel=0.05)

    def test_multi_stream_scales_until_total(self):
        p = params()
        one = ring_allreduce_time_s(100e6, p, streams=1)
        three = ring_allreduce_time_s(100e6, p, streams=3)
        ten = ring_allreduce_time_s(100e6, p, streams=10)
        assert one / three == pytest.approx(3.0, rel=0.05)
        # 10 streams capped by the aggregate: 28.8/7.5 = 3.84x.
        assert one / ten == pytest.approx(3.84, rel=0.05)

    def test_single_node_uses_nvlink(self):
        p = params(world=8, nodes=1)
        time = ring_allreduce_time_s(100e6, p)
        assert time < 0.01

    def test_alpha_term_matters_for_tiny_messages(self):
        p = params()
        time = ring_allreduce_time_s(64, p)
        # Dominated by 2*(n-1) message latencies.
        assert time > 2 * 31 * 25e-6 * 0.9

    def test_world_not_divisible_rejected(self):
        with pytest.raises(CollectiveError):
            CostParams(world_size=10, num_nodes=4, nic_stream_bps=1e9,
                       nic_total_bps=1e9, nvlink_bps=1e12,
                       inter_alpha_s=1e-5)


class TestHierarchicalTime:
    def test_degenerates_on_single_node(self):
        p = params(world=8, nodes=1)
        assert hierarchical_allreduce_time_s(1e6, p) == \
            ring_allreduce_time_s(1e6, p)

    def test_uses_g_streams_inter_node(self):
        p = params()
        hier = hierarchical_allreduce_time_s(100e6, p)
        ring = ring_allreduce_time_s(100e6, p, streams=1)
        # 8 parallel shard rings beat a single-stream flat ring.
        assert hier < ring

    def test_positive_for_tiny_sizes(self):
        assert hierarchical_allreduce_time_s(64, params()) > 0


class TestBroadcastTime:
    def test_single_worker_free(self):
        assert broadcast_time_s(1e6, params(world=1, nodes=1)) == 0.0

    def test_multi_node_stream_limited(self):
        p = params()
        time = broadcast_time_s(100e6, p)
        assert time == pytest.approx(100e6 * 8 / 7.5e9, rel=0.01)

    def test_single_node_nvlink(self):
        p = params(world=8, nodes=1)
        assert broadcast_time_s(100e6, p) < 0.01
