"""Differential tests: simulated collectives vs the analytic cost model.

The α–β closed forms in :mod:`repro.collectives.cost_model` and the
flow-level simulation in :mod:`repro.collectives.timed` describe the same
algorithms at different fidelities.  They will never agree exactly — the
simulation models per-stream caps, link sharing, phase-sync overheads and
per-hop latency that the closed forms only approximate — but they must
stay inside a sanity band across the whole (ranks × payload) grid, and
they must agree on *shape*: times grow with payload, hierarchical beats
the flat ring on congested networks, and a faster NIC never makes a
collective slower.

A divergence here usually means a unit mix-up (bits/bytes), a missing
``2(n-1)/n`` volume factor, or a topology path that silently stopped
contending for the right links.
"""

import pytest

from repro.collectives import TimedCollectives
from repro.collectives.cost_model import (
    CostParams,
    broadcast_time_s,
    hierarchical_allreduce_time_s,
    ring_allreduce_time_s,
)
from repro.sim import FluidNetwork, Simulator, alibaba_v100_cluster

RANKS = [4, 8, 16, 32, 64]
PAYLOADS_BYTES = [16e6, 100e6]


def make_context(num_gpus, **cluster_kwargs):
    sim = Simulator()
    net = FluidNetwork(sim)
    cluster = alibaba_v100_cluster(sim, num_gpus, **cluster_kwargs)
    return sim, TimedCollectives(sim, net, cluster), cluster


def analytic_params(cluster):
    return CostParams(
        world_size=cluster.world_size,
        num_nodes=cluster.num_nodes,
        nic_stream_bps=cluster.stream_cap_bps(),
        nic_total_bps=cluster.nic_out[0].capacity_bps
        if cluster.num_nodes > 1 else cluster.spec.nic_bandwidth_bps,
        nvlink_bps=cluster.spec.gpu.nvlink_bps,
        inter_alpha_s=cluster.spec.transport.per_message_overhead_s,
    )


class TestRingDifferential:
    @pytest.mark.parametrize("ranks", RANKS)
    @pytest.mark.parametrize("payload", PAYLOADS_BYTES)
    def test_ring_within_band_of_closed_form(self, ranks, payload):
        sim, timed, cluster = make_context(ranks)
        done = timed.allreduce(payload, algorithm="ring")
        sim.run(until=done)
        analytic = ring_allreduce_time_s(payload, analytic_params(cluster))
        assert sim.now == pytest.approx(analytic, rel=0.35), (
            f"ring {ranks}r {payload / 1e6:.0f}MB: "
            f"simulated {sim.now:.4f}s vs analytic {analytic:.4f}s"
        )

    @pytest.mark.parametrize("ranks", RANKS)
    def test_ring_monotone_in_payload(self, ranks):
        durations = []
        for payload in (8e6, 32e6, 128e6):
            sim, timed, _ = make_context(ranks)
            done = timed.allreduce(payload, algorithm="ring")
            sim.run(until=done)
            durations.append(sim.now)
        assert durations == sorted(durations)
        # 16x the bytes must cost visibly more than 2x the time (the
        # bandwidth term dominates at these sizes).
        assert durations[-1] > durations[0] * 2


class TestHierarchicalDifferential:
    @pytest.mark.parametrize("ranks", [16, 32, 64])
    @pytest.mark.parametrize("payload", PAYLOADS_BYTES)
    def test_hierarchical_within_band_of_closed_form(self, ranks, payload):
        sim, timed, cluster = make_context(ranks)
        done = timed.allreduce(payload, algorithm="hierarchical")
        sim.run(until=done)
        analytic = hierarchical_allreduce_time_s(
            payload, analytic_params(cluster))
        # The simulation adds the per-phase device sync the closed form
        # omits; widen the band by that fixed cost.
        from repro.collectives.timed import HIERARCHICAL_PHASE_SYNC_S
        analytic += 2 * HIERARCHICAL_PHASE_SYNC_S
        assert sim.now == pytest.approx(analytic, rel=0.35), (
            f"hierarchical {ranks}r {payload / 1e6:.0f}MB: "
            f"simulated {sim.now:.4f}s vs analytic {analytic:.4f}s"
        )

    @pytest.mark.parametrize("ranks", [32, 64])
    def test_algorithms_agree_on_congested_winner(self, ranks):
        # Both the simulation and the closed forms must rank the
        # hierarchical algorithm ahead of the flat ring once the NIC is
        # the bottleneck (paper §VIII-D: hierarchical wins on congested
        # links).  Congestion is modelled by a degraded NIC.
        payload = 100e6
        times = {}
        for algorithm in ("ring", "hierarchical"):
            sim, timed, cluster = make_context(
                ranks, nic_bandwidth_bps=10e9)
            done = timed.allreduce(payload, algorithm=algorithm)
            sim.run(until=done)
            times[algorithm] = sim.now
        params = analytic_params(
            make_context(ranks, nic_bandwidth_bps=10e9)[2])
        assert times["hierarchical"] < times["ring"]
        assert hierarchical_allreduce_time_s(payload, params) < \
            ring_allreduce_time_s(payload, params)


class TestBroadcastDifferential:
    @pytest.mark.parametrize("ranks", [8, 32, 64])
    def test_broadcast_within_band_of_closed_form(self, ranks):
        payload = 50e6
        sim, timed, cluster = make_context(ranks)
        done = timed.broadcast(payload)
        sim.run(until=done)
        analytic = broadcast_time_s(payload, analytic_params(cluster))
        assert sim.now == pytest.approx(analytic, rel=0.5), (
            f"broadcast {ranks}r: simulated {sim.now:.4f}s "
            f"vs analytic {analytic:.4f}s"
        )


class TestScalingSanity:
    def test_faster_nic_never_slower(self):
        durations = []
        for nic in (10e9, 30e9, 100e9):
            sim, timed, _ = make_context(32, nic_bandwidth_bps=nic)
            done = timed.allreduce(100e6, algorithm="ring")
            sim.run(until=done)
            durations.append(sim.now)
        assert durations == sorted(durations, reverse=True)

    def test_ring_time_flat_in_world_size_at_fixed_payload(self):
        # 2 S (n-1)/n per hop: hop volume saturates, so inter-node ring
        # time should change by far less than world size does.
        times = {}
        for ranks in (16, 64):
            sim, timed, _ = make_context(ranks)
            done = timed.allreduce(100e6, algorithm="ring")
            sim.run(until=done)
            times[ranks] = sim.now
        assert times[64] < times[16] * 2.5
