"""Property tests for the topology-aware collective planner.

Two families of properties:

* **numeric** — every planner algorithm's message-level face reduces the
  same values as the flat numeric ring, bit for bit.  Inputs are
  integer-valued float arrays, so every association order of the sum is
  exact and any divergence is a routing/chunking bug, not rounding.
* **timing** — synthesized schedules respect the obvious partial orders:
  cost is monotone in payload size, and never improves when the spine
  gets more oversubscribed (less core bandwidth).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (
    PLANNER_ALGORITHMS,
    CollectivePlanner,
    ReduceOp,
    TimedCollectives,
    planned_numeric_allreduce,
    ring_allreduce,
)
from repro.errors import CollectiveError
from repro.sim import FluidNetwork, Simulator, alibaba_v100_cluster


def integer_arrays(n_workers, length, seed):
    rng = np.random.default_rng(seed)
    return [rng.integers(-8, 9, size=length).astype(np.float64)
            for _ in range(n_workers)]


def timed_allreduce_s(num_gpus, algorithm, size_bytes,
                      core_oversubscription=1.0):
    sim = Simulator()
    cluster = alibaba_v100_cluster(
        sim, num_gpus, core_oversubscription=core_oversubscription)
    timed = TimedCollectives(sim, FluidNetwork(sim), cluster)
    done = timed.allreduce(size_bytes, algorithm=algorithm)
    sim.run(until=done)
    return sim.now


class TestNumericBitExactness:
    """Planner numeric faces vs the flat ring, bit for bit."""

    @settings(max_examples=40, deadline=None)
    @given(n=st.sampled_from([1, 2, 4, 8, 16]),
           length=st.integers(0, 70),
           seed=st.integers(0, 2**32 - 1))
    def test_halving_doubling_matches_ring(self, n, length, seed):
        arrays = integer_arrays(n, length, seed)
        expected = ring_allreduce(arrays, op=ReduceOp.SUM)
        results = planned_numeric_allreduce("halving-doubling", arrays,
                                            op=ReduceOp.SUM)
        for got, want in zip(results, expected):
            assert got.tobytes() == want.tobytes()

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 9),
           length=st.integers(0, 70),
           seed=st.integers(0, 2**32 - 1))
    def test_multi_tree_matches_ring(self, n, length, seed):
        arrays = integer_arrays(n, length, seed)
        expected = ring_allreduce(arrays, op=ReduceOp.SUM)
        results = planned_numeric_allreduce("multi-tree", arrays,
                                            op=ReduceOp.SUM)
        for got, want in zip(results, expected):
            assert got.tobytes() == want.tobytes()

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 9),
           length=st.integers(0, 70),
           seed=st.integers(0, 2**32 - 1))
    def test_ina_matches_ring(self, n, length, seed):
        arrays = integer_arrays(n, length, seed)
        expected = ring_allreduce(arrays, op=ReduceOp.SUM)
        results = planned_numeric_allreduce("ina", arrays, op=ReduceOp.SUM)
        for got, want in zip(results, expected):
            assert got.tobytes() == want.tobytes()

    @pytest.mark.parametrize("algorithm", PLANNER_ALGORITHMS)
    def test_avg_op(self, algorithm):
        arrays = integer_arrays(4, 32, seed=7)
        expected = np.mean(arrays, axis=0)
        for result in planned_numeric_allreduce(algorithm, arrays,
                                                op=ReduceOp.AVG):
            np.testing.assert_allclose(result, expected, rtol=1e-12)

    def test_halving_doubling_rejects_non_power_of_two(self):
        with pytest.raises(CollectiveError):
            planned_numeric_allreduce("halving-doubling",
                                      integer_arrays(3, 8, seed=0))


class TestScheduleProperties:
    """Partial orders every synthesized schedule must respect."""

    @settings(max_examples=15, deadline=None)
    @given(algorithm=st.sampled_from(PLANNER_ALGORITHMS),
           small_mb=st.floats(1.0, 60.0),
           extra_mb=st.floats(0.0, 60.0))
    def test_cost_monotone_in_size(self, algorithm, small_mb, extra_mb):
        small = small_mb * 1e6
        large = small + extra_mb * 1e6
        t_small = timed_allreduce_s(32, algorithm, small)
        t_large = timed_allreduce_s(32, algorithm, large)
        assert t_large >= t_small - 1e-12

    @settings(max_examples=15, deadline=None)
    @given(algorithm=st.sampled_from(PLANNER_ALGORITHMS),
           healthy_over=st.floats(1.0, 4.0),
           extra_over=st.floats(0.0, 4.0))
    def test_cost_non_increasing_in_spine_bandwidth(
            self, algorithm, healthy_over, extra_over):
        # More oversubscription = less spine bandwidth: never faster.
        t_fast_spine = timed_allreduce_s(
            32, algorithm, 64e6, core_oversubscription=healthy_over)
        t_slow_spine = timed_allreduce_s(
            32, algorithm, 64e6,
            core_oversubscription=healthy_over + extra_over)
        assert t_slow_spine >= t_fast_spine - 1e-9

    @pytest.mark.parametrize("algorithm", PLANNER_ALGORITHMS)
    def test_schedule_structure(self, algorithm):
        sim = Simulator()
        cluster = alibaba_v100_cluster(sim, 32, core_oversubscription=2.0)
        planner = CollectivePlanner(cluster)
        schedule = planner.plan(algorithm, 64e6)
        assert schedule.algorithm == algorithm
        assert schedule.phases
        assert schedule.total_flow_bytes > 0
        assert schedule.total_latency_s > 0
        for phase in schedule.phases:
            for flow in phase.flows:
                assert flow.size_bytes >= 0
                assert flow.links

    def test_zero_size_and_single_worker_schedules_empty(self):
        sim = Simulator()
        cluster = alibaba_v100_cluster(sim, 32)
        planner = CollectivePlanner(cluster)
        assert planner.plan("ina", 0.0).phases == ()
        single = alibaba_v100_cluster(Simulator(), 1, gpus_per_node=1)
        assert CollectivePlanner(single).plan("ina", 64e6).phases == ()

    def test_halving_doubling_requires_power_of_two_nodes(self):
        sim = Simulator()
        cluster = alibaba_v100_cluster(sim, 24)  # 3 nodes
        planner = CollectivePlanner(cluster)
        assert "halving-doubling" not in planner.supported_algorithms()
        with pytest.raises(CollectiveError):
            planner.plan("halving-doubling", 64e6)
