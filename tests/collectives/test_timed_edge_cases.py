"""Regression tests: timed-collective edge cases and heterogeneous NICs.

Three bug classes pinned here:

* the flat ring's exposed per-chunk overhead was computed from the
  *default* node's per-stream cap even though the pipeline advances at
  the pace of the slowest hop — wrong whenever NIC caps differ;
* degenerate cluster shapes (``gpus_per_node == 1``, single node,
  ``world_size == num_nodes``) where the closed-form cost model used to
  charge phantom NVLink terms;
* zero-byte and single-participant collectives, which must complete at
  zero cost instead of launching empty flows that still pay α terms.
"""

import pytest

from repro.collectives import TimedCollectives
from repro.collectives.cost_model import (
    CostParams,
    hierarchical_allreduce_time_s,
    ring_allreduce_time_s,
)
from repro.sim import FluidNetwork, Simulator, alibaba_v100_cluster
from repro.sim.topology import Cluster, NodeSpec


def make_context(num_gpus, congested_links=None, gpus_per_node=8):
    sim = Simulator()
    net = FluidNetwork(sim)
    if congested_links:
        cluster = Cluster(sim, num_gpus // gpus_per_node,
                          NodeSpec(gpus_per_node=gpus_per_node),
                          congested_links=congested_links)
    else:
        cluster = alibaba_v100_cluster(sim, num_gpus,
                                       gpus_per_node=gpus_per_node)
    return sim, TimedCollectives(sim, net, cluster), cluster


def analytic_params(cluster):
    return CostParams(
        world_size=cluster.world_size,
        num_nodes=cluster.num_nodes,
        nic_stream_bps=cluster.stream_cap_bps(),
        nic_total_bps=cluster.nic_out[0].capacity_bps
        if cluster.num_nodes > 1 else cluster.spec.nic_bandwidth_bps,
        nvlink_bps=cluster.spec.gpu.nvlink_bps,
        inter_alpha_s=cluster.spec.transport.per_message_overhead_s,
    )


class TestHeterogeneousNicCaps:
    """Exposed overhead must be paced by the slowest hop, not node 0's."""

    def test_slowest_cap_helper_scans_all_hops(self):
        _sim, timed, cluster = make_context(
            32, congested_links={2: 0.5})
        hops = timed._nic_hops()
        assert timed._slowest_stream_cap_bps(hops, 1.0) == \
            cluster.stream_cap_bps(2)
        assert cluster.stream_cap_bps(2) < cluster.stream_cap_bps(0)

    @pytest.mark.parametrize("algorithm", ["ring", "hierarchical"])
    def test_ring_invariant_under_congested_node_relabeling(
            self, algorithm):
        # A ring is rotationally symmetric: congesting node 0 and
        # congesting node 1 are the same deployment with nodes renamed,
        # so completion times must match exactly.  The old code read the
        # per-chunk cap from node 0 only, so the two runs disagreed
        # whenever node 0 happened (not) to be the congested one.
        times = []
        for node in (0, 1):
            sim, timed, _cluster = make_context(
                32, congested_links={node: 0.25})
            done = timed.allreduce(4e6, algorithm=algorithm)
            sim.run(until=done)
            times.append(sim.now)
        assert times[0] == pytest.approx(times[1], rel=1e-12)

    def test_congested_hop_slows_the_ring(self):
        sim, timed, _cluster = make_context(32)
        done = timed.allreduce(4e6)
        sim.run(until=done)
        healthy = sim.now
        sim, timed, _cluster = make_context(32, congested_links={1: 0.25})
        done = timed.allreduce(4e6)
        sim.run(until=done)
        assert sim.now > healthy


class TestDegenerateShapeDifferential:
    """Closed forms vs simulation at the corner shapes (satellite sweep)."""

    PAYLOADS = [16e6, 100e6]

    @pytest.mark.parametrize("payload", PAYLOADS)
    @pytest.mark.parametrize("num_nodes", [2, 4, 8])
    def test_world_size_equals_num_nodes(self, num_nodes, payload):
        # One GPU per node: no NVLink phase exists on either side.
        sim, timed, cluster = make_context(num_nodes, gpus_per_node=1)
        done = timed.allreduce(payload, algorithm="ring")
        sim.run(until=done)
        analytic = ring_allreduce_time_s(payload, analytic_params(cluster))
        assert sim.now == pytest.approx(analytic, rel=0.35)

    @pytest.mark.parametrize("payload", PAYLOADS)
    def test_hierarchical_degrades_to_ring_at_g1(self, payload):
        sim, timed, cluster = make_context(4, gpus_per_node=1)
        done = timed.allreduce(payload, algorithm="hierarchical")
        sim.run(until=done)
        analytic = hierarchical_allreduce_time_s(
            payload, analytic_params(cluster))
        assert sim.now == pytest.approx(analytic, rel=0.35)

    @pytest.mark.parametrize("payload", PAYLOADS)
    def test_single_node(self, payload):
        sim, timed, cluster = make_context(8)
        done = timed.allreduce(payload, algorithm="ring")
        sim.run(until=done)
        analytic = ring_allreduce_time_s(payload, analytic_params(cluster))
        assert sim.now == pytest.approx(analytic, rel=0.35)

    def test_zero_bytes_is_free_in_both_models(self):
        sim, timed, cluster = make_context(32)
        params = analytic_params(cluster)
        assert ring_allreduce_time_s(0.0, params) == 0.0
        assert hierarchical_allreduce_time_s(0.0, params) == 0.0
        done = timed.allreduce(0.0)
        sim.run(until=done)
        assert sim.now == 0.0

    def test_single_worker_is_free_in_both_models(self):
        sim, timed, cluster = make_context(1, gpus_per_node=1)
        params = analytic_params(cluster)
        assert ring_allreduce_time_s(64e6, params) == 0.0
        done = timed.allreduce(64e6)
        sim.run(until=done)
        assert sim.now == 0.0


class TestZeroAndSingleParticipant:
    """Degenerate collectives complete instantly, without flows."""

    ALGORITHMS = ["ring", "hierarchical", "halving-doubling",
                  "multi-tree", "ina"]

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_zero_byte_allreduce_every_algorithm(self, algorithm):
        sim, timed, _cluster = make_context(32)
        done = timed.allreduce(0.0, algorithm=algorithm)
        sim.run(until=done)
        assert sim.now == 0.0
        assert done.value == 0.0

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_single_worker_allreduce_every_algorithm(self, algorithm):
        sim, timed, _cluster = make_context(1, gpus_per_node=1)
        done = timed.allreduce(128e6, algorithm=algorithm)
        sim.run(until=done)
        assert sim.now == 0.0

    def test_zero_byte_allreduce_still_counted_in_telemetry(self):
        from repro.obs import Observability

        obs = Observability(enabled=True)
        sim = Simulator()
        cluster = alibaba_v100_cluster(sim, 32)
        timed = TimedCollectives(sim, FluidNetwork(sim), cluster, obs=obs)
        done = timed.allreduce(0.0)
        sim.run(until=done)
        counter = obs.registry.counter("allreduce_total", "")
        assert counter.value(algorithm="ring") == 1

    def test_zero_byte_broadcast_and_friends(self):
        sim, timed, _cluster = make_context(32)
        for op in (timed.broadcast, timed.alltoall,
                   timed.reduce_scatter, timed.allgather):
            done = op(0.0)
            sim.run(until=done)
        assert sim.now == 0.0

    def test_single_worker_broadcast_and_friends(self):
        sim, timed, _cluster = make_context(1, gpus_per_node=1)
        for op in (timed.broadcast, timed.alltoall,
                   timed.reduce_scatter, timed.allgather):
            done = op(64e6)
            sim.run(until=done)
        assert sim.now == 0.0

    def test_nonzero_collectives_cost_time(self):
        # Guard the guard: real payloads on a real cluster still pay.
        for op_name in ("broadcast", "alltoall", "reduce_scatter",
                        "allgather"):
            sim, timed, _cluster = make_context(32)
            done = getattr(timed, op_name)(64e6)
            sim.run(until=done)
            assert sim.now > 0.0, op_name

    def test_negative_size_rejected(self):
        from repro.errors import CollectiveError

        _sim, timed, _cluster = make_context(32)
        with pytest.raises(CollectiveError):
            timed.allreduce(-1.0)
