"""Correctness of the numeric collectives (ring, hierarchical, RS/AG, bcast).

These tests exercise the message-level implementations with real numpy
payloads and compare against the mathematical reduction.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (
    ReduceOp,
    allgather,
    broadcast,
    hierarchical_allreduce,
    reduce_scatter,
    ring_allreduce,
)
from repro.collectives.primitives import chunk_bounds
from repro.errors import CollectiveError


def random_inputs(n_workers, length, seed):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=length) for _ in range(n_workers)]


class TestRingAllReduce:
    @pytest.mark.parametrize("n_workers", [1, 2, 3, 4, 7, 8])
    def test_sum_matches_numpy(self, n_workers):
        arrays = random_inputs(n_workers, 40, seed=n_workers)
        expected = np.sum(arrays, axis=0)
        for result in ring_allreduce(arrays, op=ReduceOp.SUM):
            np.testing.assert_allclose(result, expected, rtol=1e-12)

    def test_min_bit_vector_synchronization(self):
        # Paper §V-A: min over readiness bits -> globally ready mask.
        vectors = [
            np.array([1, 1, 0, 1, 1], dtype=np.uint8),
            np.array([1, 0, 1, 1, 1], dtype=np.uint8),
            np.array([1, 1, 1, 0, 1], dtype=np.uint8),
        ]
        for result in ring_allreduce(vectors, op=ReduceOp.MIN):
            np.testing.assert_array_equal(result, [1, 0, 0, 0, 1])

    def test_max(self):
        arrays = random_inputs(4, 10, seed=1)
        expected = np.max(arrays, axis=0)
        for result in ring_allreduce(arrays, op=ReduceOp.MAX):
            np.testing.assert_allclose(result, expected)

    def test_avg(self):
        arrays = random_inputs(4, 10, seed=2)
        expected = np.mean(arrays, axis=0)
        for result in ring_allreduce(arrays, op=ReduceOp.AVG):
            np.testing.assert_allclose(result, expected)

    def test_short_array_fewer_elements_than_workers(self):
        arrays = random_inputs(8, 3, seed=3)
        expected = np.sum(arrays, axis=0)
        for result in ring_allreduce(arrays):
            np.testing.assert_allclose(result, expected)

    def test_inputs_not_modified(self):
        arrays = random_inputs(3, 10, seed=4)
        originals = [a.copy() for a in arrays]
        ring_allreduce(arrays)
        for array, original in zip(arrays, originals):
            np.testing.assert_array_equal(array, original)

    def test_empty_worker_list_rejected(self):
        with pytest.raises(CollectiveError):
            ring_allreduce([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CollectiveError):
            ring_allreduce([np.zeros(3), np.zeros(4)])

    @settings(max_examples=25, deadline=None)
    @given(
        n_workers=st.integers(1, 6),
        length=st.integers(0, 64),
        seed=st.integers(0, 2**16),
    )
    def test_property_sum_equals_numpy(self, n_workers, length, seed):
        arrays = random_inputs(n_workers, length, seed)
        expected = np.sum(arrays, axis=0) if length else np.empty(0)
        for result in ring_allreduce(arrays):
            np.testing.assert_allclose(result, expected, rtol=1e-10,
                                       atol=1e-12)


class TestHierarchicalAllReduce:
    @pytest.mark.parametrize("n_nodes,gpus", [(2, 2), (2, 4), (4, 2), (3, 3)])
    def test_sum_matches_numpy(self, n_nodes, gpus):
        n = n_nodes * gpus
        arrays = random_inputs(n, 50, seed=n)
        expected = np.sum(arrays, axis=0)
        for result in hierarchical_allreduce(arrays, gpus_per_node=gpus):
            np.testing.assert_allclose(result, expected, rtol=1e-12)

    def test_single_node_degenerates_to_ring(self):
        arrays = random_inputs(4, 20, seed=9)
        expected = np.sum(arrays, axis=0)
        for result in hierarchical_allreduce(arrays, gpus_per_node=4):
            np.testing.assert_allclose(result, expected)

    def test_one_gpu_per_node_degenerates_to_ring(self):
        arrays = random_inputs(4, 20, seed=10)
        expected = np.sum(arrays, axis=0)
        for result in hierarchical_allreduce(arrays, gpus_per_node=1):
            np.testing.assert_allclose(result, expected)

    def test_min_op(self):
        arrays = random_inputs(4, 16, seed=11)
        expected = np.min(arrays, axis=0)
        for result in hierarchical_allreduce(arrays, gpus_per_node=2,
                                             op=ReduceOp.MIN):
            np.testing.assert_allclose(result, expected)

    def test_mismatched_node_split_rejected(self):
        arrays = random_inputs(6, 10, seed=12)
        with pytest.raises(CollectiveError):
            hierarchical_allreduce(arrays, gpus_per_node=4)

    @settings(max_examples=15, deadline=None)
    @given(
        n_nodes=st.integers(2, 3),
        gpus=st.integers(2, 3),
        length=st.integers(1, 64),
        seed=st.integers(0, 2**16),
    )
    def test_property_matches_flat_ring(self, n_nodes, gpus, length, seed):
        arrays = random_inputs(n_nodes * gpus, length, seed)
        flat = ring_allreduce(arrays)
        hier = hierarchical_allreduce(arrays, gpus_per_node=gpus)
        for a, b in zip(flat, hier):
            np.testing.assert_allclose(a, b, rtol=1e-10, atol=1e-12)


class TestReduceScatter:
    def test_chunks_match_ring_convention(self):
        n = 4
        arrays = random_inputs(n, 20, seed=20)
        expected = np.sum(arrays, axis=0)
        bounds = chunk_bounds(20, n)
        results = reduce_scatter(arrays)
        for rank, chunk in enumerate(results):
            lo, hi = bounds[(rank + 1) % n]
            np.testing.assert_allclose(chunk, expected[lo:hi], rtol=1e-12)

    def test_single_worker(self):
        arrays = random_inputs(1, 10, seed=21)
        np.testing.assert_array_equal(reduce_scatter(arrays)[0], arrays[0])


class TestAllGather:
    def test_all_workers_collect_all_chunks(self):
        chunks = [np.full(3, float(rank)) for rank in range(5)]
        results = allgather(chunks)
        for gathered in results:
            assert len(gathered) == 5
            for rank, chunk in enumerate(gathered):
                np.testing.assert_array_equal(chunk, np.full(3, float(rank)))

    def test_reduce_scatter_plus_allgather_equals_allreduce(self):
        n = 4
        arrays = random_inputs(n, 21, seed=22)
        expected = np.sum(arrays, axis=0)
        scattered = reduce_scatter(arrays)
        gathered = allgather(scattered)
        bounds = chunk_bounds(21, n)
        for per_worker in gathered:
            # Chunk owned by rank r covers bounds[(r + 1) % n].
            reassembled = np.empty(21)
            for rank, chunk in enumerate(per_worker):
                lo, hi = bounds[(rank + 1) % n]
                reassembled[lo:hi] = chunk
            np.testing.assert_allclose(reassembled, expected, rtol=1e-12)


class TestBroadcast:
    @pytest.mark.parametrize("n_workers", [1, 2, 3, 8])
    def test_all_receive_root_data(self, n_workers):
        rng = np.random.default_rng(30)
        data = rng.normal(size=37)
        slots = [data] + [None] * (n_workers - 1)
        for result in broadcast(slots, root=0):
            np.testing.assert_array_equal(result, data)

    def test_nonzero_root(self):
        rng = np.random.default_rng(31)
        data = rng.normal(size=16)
        slots = [None, None, data, None]
        for result in broadcast(slots, root=2):
            np.testing.assert_array_equal(result, data)

    def test_missing_root_data_rejected(self):
        with pytest.raises(CollectiveError):
            broadcast([None, None], root=0)

    def test_bad_root_rejected(self):
        with pytest.raises(CollectiveError):
            broadcast([np.zeros(2)], root=5)
