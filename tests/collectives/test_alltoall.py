"""Tests for all-to-all, gather, scatter and reduce-to-root."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.alltoall import alltoall, gather, reduce, scatter
from repro.collectives.primitives import ReduceOp
from repro.errors import CollectiveError


class TestAllToAll:
    def test_transpose_semantics(self):
        # Worker i sends value (i*10 + j) to worker j; worker j must end
        # with column j of that matrix.
        n = 4
        per_worker = [
            [np.array([float(i * 10 + j)]) for j in range(n)]
            for i in range(n)
        ]
        results = alltoall(per_worker)
        for j, received in enumerate(results):
            got = [float(chunk[0]) for chunk in received]
            assert got == [i * 10 + j for i in range(n)]

    def test_single_worker(self):
        results = alltoall([[np.array([1.0, 2.0])]])
        np.testing.assert_array_equal(results[0][0], [1.0, 2.0])

    def test_variable_chunk_sizes(self):
        per_worker = [
            [np.full(j + 1, float(i)) for j in range(2)]
            for i in range(2)
        ]
        results = alltoall(per_worker)
        assert results[0][1].shape == (1,)
        assert results[1][0].shape == (2,)

    def test_wrong_chunk_count_rejected(self):
        with pytest.raises(CollectiveError):
            alltoall([[np.zeros(1)], [np.zeros(1), np.zeros(1)]])

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(1, 6), seed=st.integers(0, 100))
    def test_property_matches_transpose(self, n, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(n, n, 3))
        per_worker = [[matrix[i, j] for j in range(n)] for i in range(n)]
        results = alltoall(per_worker)
        for j in range(n):
            for i in range(n):
                np.testing.assert_array_equal(results[j][i], matrix[i, j])


class TestGatherScatter:
    def test_gather_collects_at_root(self):
        arrays = [np.full(2, float(rank)) for rank in range(4)]
        results = gather(arrays, root=1)
        assert results[0] is None
        gathered = results[1]
        for rank, part in enumerate(gathered):
            np.testing.assert_array_equal(part, np.full(2, float(rank)))

    def test_scatter_distributes_from_root(self):
        chunks = [np.full(3, float(rank)) for rank in range(4)]
        results = scatter(chunks, root=2)
        for rank, part in enumerate(results):
            np.testing.assert_array_equal(part, np.full(3, float(rank)))

    def test_scatter_gather_roundtrip(self):
        rng = np.random.default_rng(0)
        chunks = [rng.normal(size=4) for _ in range(3)]
        scattered = scatter(chunks, root=0)
        results = gather(scattered, root=0)
        for original, received in zip(chunks, results[0]):
            np.testing.assert_array_equal(original, received)

    def test_scatter_chunk_count_validated(self):
        with pytest.raises(CollectiveError):
            scatter([np.zeros(1)], root=0, size=3)


class TestReduce:
    def test_sum_at_root(self):
        arrays = [np.array([1.0, 2.0]), np.array([3.0, 4.0]),
                  np.array([5.0, 6.0])]
        results = reduce(arrays, root=0)
        np.testing.assert_array_equal(results[0], [9.0, 12.0])
        assert results[1] is None and results[2] is None

    def test_avg(self):
        arrays = [np.array([2.0]), np.array([4.0])]
        results = reduce(arrays, root=1, op=ReduceOp.AVG)
        np.testing.assert_array_equal(results[1], [3.0])

    def test_reduce_then_broadcast_equals_allreduce(self):
        from repro.collectives import broadcast, ring_allreduce

        rng = np.random.default_rng(1)
        arrays = [rng.normal(size=8) for _ in range(4)]
        reduced_at_root = reduce(arrays, root=0)[0]
        rebroadcast = broadcast(
            [reduced_at_root, None, None, None], root=0)
        allreduced = ring_allreduce(arrays)
        for a, b in zip(rebroadcast, allreduced):
            np.testing.assert_allclose(a, b, rtol=1e-12)
