"""Cross-layer validation: message-level, flow-level and analytic models.

The library models each collective at three fidelities:

1. **message-level** — the numeric ring exchanging real chunks through a
   cluster-backed communicator whose messages are flows on the network;
2. **flow-level** — :class:`TimedCollectives` placing aggregate hop flows;
3. **analytic** — the α-β cost model.

For symmetric clusters all three must agree on all-reduce duration
(within latency-term tolerances); this is the strongest internal
consistency check the simulator has.
"""

import numpy as np
import pytest

from repro.collectives import (
    TimedCollectives,
    ring_allreduce_worker,
    ring_volume_bytes,
)
from repro.collectives.cost_model import CostParams, ring_allreduce_time_s
from repro.collectives.runner import run_workers
from repro.sim import Communicator, FluidNetwork, Simulator
from repro.sim.topology import Cluster, NodeSpec


def message_level_duration(num_nodes, gpus_per_node, elements):
    """Numeric ring all-reduce over a cluster-backed communicator."""
    sim = Simulator()
    net = FluidNetwork(sim)
    cluster = Cluster(sim, num_nodes,
                      NodeSpec(gpus_per_node=gpus_per_node))
    world = cluster.world_size
    comm = Communicator(sim, size=world, cluster=cluster, network=net)
    rng = np.random.default_rng(0)
    arrays = [rng.normal(size=elements).astype(np.float32)
              for _ in range(world)]
    processes = [
        sim.spawn(ring_allreduce_worker(sim, comm, rank, arrays[rank]))
        for rank in range(world)
    ]
    results = run_workers(sim, processes)
    # Sanity: the reduction is still correct through the timed transport.
    expected = np.sum(arrays, axis=0)
    np.testing.assert_allclose(results[0], expected, rtol=1e-4, atol=1e-4)
    return sim.now


def flow_level_duration(num_nodes, gpus_per_node, size_bytes):
    sim = Simulator()
    net = FluidNetwork(sim)
    cluster = Cluster(sim, num_nodes,
                      NodeSpec(gpus_per_node=gpus_per_node))
    timed = TimedCollectives(sim, net, cluster)
    done = timed.allreduce(size_bytes)
    sim.run(until=done)
    return sim.now


class TestThreeWayAgreement:
    @pytest.mark.parametrize("num_nodes,gpus_per_node", [(2, 2), (4, 2),
                                                         (2, 4)])
    def test_message_level_matches_flow_level(self, num_nodes,
                                              gpus_per_node):
        elements = 2_000_000  # 8 MB fp32
        size_bytes = elements * 4
        message = message_level_duration(num_nodes, gpus_per_node,
                                         elements)
        flow = flow_level_duration(num_nodes, gpus_per_node, size_bytes)
        # The message-level ring pays per-step serialization that the
        # fluid model folds into its α terms; agreement within 35% over
        # a 4x range of topologies validates both.
        assert message == pytest.approx(flow, rel=0.35)

    @pytest.mark.parametrize("size_mb", [1, 8, 64])
    def test_flow_level_matches_analytic(self, size_mb):
        num_nodes, gpus_per_node = 4, 8
        size_bytes = size_mb * 1e6
        sim_time = flow_level_duration(num_nodes, gpus_per_node,
                                       size_bytes)
        spec = NodeSpec(gpus_per_node=gpus_per_node)
        params = CostParams(
            world_size=num_nodes * gpus_per_node,
            num_nodes=num_nodes,
            nic_stream_bps=spec.transport.stream_cap_bps(
                spec.nic_bandwidth_bps),
            nic_total_bps=spec.transport.effective_capacity_bps(
                spec.nic_bandwidth_bps),
            nvlink_bps=spec.gpu.nvlink_bps,
            inter_alpha_s=spec.transport.per_message_overhead_s,
        )
        analytic = ring_allreduce_time_s(size_bytes, params)
        assert sim_time == pytest.approx(analytic, rel=0.3)

    def test_message_level_bandwidth_sane(self):
        # The measured duration must never beat the per-stream cap.
        elements = 2_000_000
        duration = message_level_duration(2, 2, elements)
        hop_bits = ring_volume_bytes(elements * 4, 4) * 8
        cap = NodeSpec().transport.stream_cap_bps(30e9)
        assert duration >= hop_bits / cap * 0.5  # chunks pipeline 2 links
