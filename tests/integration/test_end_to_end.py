"""Integration tests combining several subsystems end to end."""

import numpy as np
import pytest

from repro.core.fault_tolerance import CheckpointManager, ElasticCoordinator
from repro.core.perseus import PerseusSession
from repro.core.runtime import AIACCConfig
from repro.core.sparsification import TopKCompressor, train_step_with_topk
from repro.harness import measure
from repro.sim.tracing import Trace
from repro.training.numeric import (
    TinyMLP,
    make_synthetic_task,
    train_data_parallel,
)
from repro.training.optimizer import SGD, AdamSGD, DistributedOptimizer
from repro.training.lr_schedule import LinearDecay
from repro.training.pipeline import NumericPipeline
from repro.training.trainer import run_training


class TestNumericFullStack:
    """All the numeric features composed in one training run."""

    def test_fp16_tiny_units_nan_check_adamsgd_linear_decay(self):
        task = make_synthetic_task(num_samples=512, seed=0)
        model = TinyMLP(16, 16, 4, seed=1)
        config = AIACCConfig(
            granularity_bytes=512 * 1024,
            fp16_compression=True,
            nan_check=True,
        )
        session = PerseusSession(4, config=config)
        optimizer = AdamSGD(lr=0.01, sgd_lr=0.05, switch_step=10)
        schedule = LinearDecay(base_lr=0.01, total_steps=25,
                               warmup_steps=3)
        dist = DistributedOptimizer(optimizer, session)
        worker_params = [model.clone_parameters() for _ in range(4)]

        losses = []
        for step in range(25):
            lo = (step * 64) % 448
            grads, step_losses = [], []
            for rank in range(4):
                shard = slice(lo + rank * 16, lo + (rank + 1) * 16)
                loss, g = TinyMLP.loss_and_grads(
                    worker_params[rank], task.inputs[shard],
                    task.labels[shard])
                grads.append(g)
                step_losses.append(loss)
            optimizer.set_lr(schedule.lr_at(step))
            dist.step(worker_params, grads)
            losses.append(float(np.mean(step_losses)))

        assert losses[-1] < losses[0] * 0.5
        # Workers stay in lockstep through the whole feature stack.
        for name in worker_params[0]:
            for other in worker_params[1:]:
                np.testing.assert_array_equal(worker_params[0][name],
                                              other[name])

    def test_pipeline_plus_data_parallel_numeric(self):
        # 2-stage pipeline inside each of 2 data-parallel replicas ==
        # plain data-parallel training.
        task = make_synthetic_task(num_samples=256, seed=2)
        plain_model = TinyMLP(16, 8, 4, seed=3)
        plain_params, _ = train_data_parallel(
            plain_model, task, SGD(lr=0.1), 4, 2, 32)

        pipe_model = TinyMLP(16, 8, 4, seed=3)
        session = PerseusSession(2)
        dist = DistributedOptimizer(SGD(lr=0.1), session)
        worker_params = [pipe_model.clone_parameters() for _ in range(2)]
        batches = task.batches(32)
        for _ in range(4):
            inputs, labels = next(batches)
            grads = []
            for rank in range(2):
                pipeline = NumericPipeline(worker_params[rank],
                                           micro_batches=4)
                _, g = pipeline.loss_and_grads(
                    inputs[rank * 16:(rank + 1) * 16],
                    labels[rank * 16:(rank + 1) * 16])
                grads.append(g)
            dist.step(worker_params, grads)

        for name in plain_params[0]:
            np.testing.assert_allclose(worker_params[0][name],
                                       plain_params[0][name],
                                       rtol=1e-6, atol=1e-8)

    def test_failure_recovery_preserves_training_math(self, tmp_path):
        task = make_synthetic_task(num_samples=256, seed=4)
        model = TinyMLP(16, 8, 4, seed=5)

        # Reference: 8 uninterrupted steps on 2 workers.
        ref_params, _ = train_data_parallel(
            model, task, SGD(lr=0.1), 8, 2, 32)

        # Interrupted run: checkpoint after 5, crash, restore, redo 3.
        manager = CheckpointManager(tmp_path)
        coordinator = ElasticCoordinator(manager, initial_workers=2)
        partial, _ = train_data_parallel(
            model, task, SGD(lr=0.1), 5, 2, 32)
        manager.save(5, partial[0])
        _, restored = coordinator.on_failure(failed_workers=1)
        # Rebuild to 2 workers (one rejoins) and replay the tail; the
        # data order is deterministic so results must match exactly...
        rebuilt = coordinator.on_join([restored], new_workers=1)
        assert coordinator.live_workers == 2

        session = PerseusSession(2)
        dist = DistributedOptimizer(SGD(lr=0.1), session)
        worker_params = [
            {k: v.copy() for k, v in state.items()} for state in rebuilt]
        batches = task.batches(32)
        for _ in range(5):  # skip the 5 already-trained batches
            next(batches)
        for _ in range(3):
            inputs, labels = next(batches)
            grads = []
            for rank in range(2):
                _, g = TinyMLP.loss_and_grads(
                    worker_params[rank],
                    inputs[rank * 16:(rank + 1) * 16],
                    labels[rank * 16:(rank + 1) * 16])
                grads.append(g)
            dist.step(worker_params, grads)

        # ... up to optimizer momentum state, which the crash discarded
        # (we restart with a fresh SGD without momentum, so it's exact).
        for name in ref_params[0]:
            np.testing.assert_allclose(worker_params[0][name],
                                       ref_params[0][name],
                                       rtol=1e-6, atol=1e-8)

    def test_topk_and_dense_agree_at_full_ratio(self):
        rng = np.random.default_rng(6)
        grads = [{"w": rng.normal(size=(8, 8))} for _ in range(3)]
        compressors = [TopKCompressor(1.0) for _ in range(3)]
        sparse = train_step_with_topk(compressors, grads)

        session = PerseusSession(3)
        session.register_parameters({"w": (8, 8)})
        dense = session.reduce_gradients(
            [{k: v.copy() for k, v in g.items()} for g in grads])
        np.testing.assert_allclose(sparse["w"], dense[0]["w"], rtol=1e-6,
                                   atol=1e-7)


class TestTimedFullStack:
    def test_trace_spans_exported_from_real_run(self):
        trace = Trace(enabled=True, keep_spans=True)
        run_training("resnet50", "aiacc", 16, measure_iterations=1,
                     warmup_iterations=0, trace=trace)
        events = trace.to_chrome_trace()
        assert any(e["name"] == "allreduce" for e in events)
        # Concurrent all-reduces overlap in the timeline: at least two
        # complete events intersect in time.
        complete = sorted((e for e in events if e["ph"] == "X"),
                          key=lambda e: e["ts"])
        overlaps = any(
            a["ts"] + a["dur"] > b["ts"]
            for a, b in zip(complete, complete[1:]))
        assert overlaps

    def test_scale_stress_512_gpus(self):
        result = measure("resnet50", "aiacc", 512)
        assert result.scaling_efficiency > 0.7
        assert result.throughput > 100_000

    def test_all_models_all_backends_smoke(self):
        # Every (model, backend) pair runs one iteration without error.
        from repro.frameworks import available_backends
        from repro.models import available_models

        for model in available_models():
            for backend in available_backends():
                result = run_training(model, backend, 16,
                                      measure_iterations=1,
                                      warmup_iterations=0)
                assert result.throughput > 0, (model, backend)
