"""Validation of the message-level AIACC engine against spec and timing."""

import numpy as np
import pytest

from repro.core.message_engine import run_message_level_iteration
from repro.core.runtime import AIACCConfig
from repro.models.synthetic import random_model_spec


def small_model(seed=0, params=800_000, layers=12):
    return random_model_spec(seed, num_layers=layers,
                             total_parameters=params,
                             total_forward_flops=1e9,
                             compute_occupancy=0.5)


class TestNumericCorrectness:
    def test_reduction_matches_math(self):
        model = small_model()
        config = AIACCConfig(num_streams=4, granularity_bytes=1 << 20)
        result = run_message_level_iteration(model, 2, 2, config=config)
        world = 4
        # value(worker, p) = base_p + rank; sum = world*base + 0+1+2+3.
        for spec_param in model.parameters():
            name = spec_param.name
            for rank in range(world):
                got = result.reduced[rank][name]
                assert got.shape == (spec_param.num_elements,)
            first = result.reduced[0][name]
            np.testing.assert_allclose(first, first[0])  # constant tensor
        # Workers agree bit-for-bit.
        for name in result.reduced[0]:
            for rank in range(1, world):
                np.testing.assert_array_equal(result.reduced[0][name],
                                              result.reduced[rank][name])

    def test_expected_sums(self):
        model = small_model(seed=3, params=10_000, layers=4)
        result = run_message_level_iteration(
            model, 2, 2, config=AIACCConfig(granularity_bytes=1 << 20),
            seed=3)
        # Rebuild the expected values: sum over ranks of (base + rank).
        rng = np.random.default_rng(3)
        for parameter in model.parameters():
            base = float(rng.normal())
            expected = 4 * base + (0 + 1 + 2 + 3)
            got = result.reduced[0][parameter.name]
            np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_all_parameters_reduced(self):
        model = small_model(seed=5)
        result = run_message_level_iteration(model, 2, 2)
        assert set(result.reduced[0]) == \
            {p.name for p in model.parameters()}

    def test_units_and_sync_rounds_counted(self):
        model = small_model(seed=7, params=2_000_000)
        config = AIACCConfig(granularity_bytes=1 << 20)
        result = run_message_level_iteration(model, 2, 2, config=config)
        # ~8 MB of gradients at 1 MB granularity -> >= 8 units.
        assert result.units >= 8
        assert result.sync_rounds >= 1


class TestTimingAgreement:
    def test_matches_timed_engine_within_tolerance(self):
        from repro.core.engine import AIACCBackend
        from repro.training.trainer import run_training

        model = small_model(seed=11, params=4_000_000, layers=16)
        config = AIACCConfig(num_streams=4, granularity_bytes=2 << 20)

        message = run_message_level_iteration(model, 2, 2, config=config)

        timed = run_training(
            model, AIACCBackend(config), 4, gpus_per_node=2,
            batch_per_gpu=1, measure_iterations=1, warmup_iterations=0)
        # Compare the communication portions: the message-level run has
        # zero compute; subtract the timed run's compute floor.  The
        # message-level ring moves whole S/n chunks per step (real NCCL
        # pipelines many slices per chunk), so its duration is an upper
        # bound on the fluid model's fully pipelined estimate; agreement
        # within 2x validates volumes and contention without modelling
        # slice-level pipelining.
        timed_comm = timed.mean_iteration_s - timed.compute_time_s
        assert timed_comm * 0.9 <= message.iteration_time_s <= \
            2.0 * timed_comm + 5e-3

    def test_multi_stream_faster_than_single(self):
        model = small_model(seed=13, params=4_000_000)
        single = run_message_level_iteration(
            model, 2, 2, config=AIACCConfig(num_streams=1,
                                            granularity_bytes=1 << 20))
        multi = run_message_level_iteration(
            model, 2, 2, config=AIACCConfig(num_streams=8,
                                            granularity_bytes=1 << 20))
        assert multi.iteration_time_s < single.iteration_time_s

    def test_compute_overlap_hides_communication(self):
        model = small_model(seed=17, params=2_000_000)
        config = AIACCConfig(num_streams=8, granularity_bytes=1 << 20)
        idle = run_message_level_iteration(model, 2, 2, config=config)
        overlapped = run_message_level_iteration(
            model, 2, 2, config=config,
            compute_time_s=idle.iteration_time_s)
        # With backward spread over the full comm duration, total time
        # grows by far less than 2x (communication overlaps compute).
        assert overlapped.iteration_time_s < \
            1.6 * max(idle.iteration_time_s, 1e-9) + 1e-9
