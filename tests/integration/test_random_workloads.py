"""Property-based tests over randomly generated DNN workloads.

These verify that the library's headline behaviours are properties of the
*mechanisms*, not artefacts of the hand-built model zoo: for any
plausible workload, iterations respect physics, AIACC never loses to
Horovod by more than noise, and multi-streaming never hurts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime import AIACCConfig
from repro.frameworks import make_backend
from repro.models.synthetic import random_model_spec
from repro.training.trainer import run_training


def quick(model, backend, gpus=16, **kw):
    return run_training(model, backend, gpus, measure_iterations=1,
                        warmup_iterations=1, **kw)


class TestRandomWorkloadProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        num_layers=st.integers(2, 60),
        params=st.integers(1_000_000, 400_000_000),
        spread=st.floats(0.0, 2.5),
    )
    def test_iteration_never_beats_compute_floor(self, seed, num_layers,
                                                 params, spread):
        spec = random_model_spec(seed, num_layers=num_layers,
                                 total_parameters=params,
                                 size_spread=spread)
        result = quick(spec, "aiacc")
        assert result.mean_iteration_s >= result.compute_time_s * 0.999
        assert 0 < result.scaling_efficiency <= 1.001

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_aiacc_at_least_matches_horovod(self, seed):
        spec = random_model_spec(seed, num_layers=30,
                                 total_parameters=120_000_000,
                                 total_forward_flops=15e9)
        aiacc = quick(spec, "aiacc", backend_options={"num_streams": 8})
        horovod = quick(spec, "horovod")
        # 2% tolerance for compute-bound ties.
        assert aiacc.throughput >= horovod.throughput * 0.98

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_more_streams_never_slower(self, seed):
        spec = random_model_spec(seed, num_layers=20,
                                 total_parameters=200_000_000,
                                 total_forward_flops=10e9)
        one = quick(spec, make_backend(
            "aiacc", config=AIACCConfig(num_streams=1)))
        eight = quick(spec, make_backend(
            "aiacc", config=AIACCConfig(num_streams=8)))
        assert eight.throughput >= one.throughput * 0.99

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000), gpus=st.sampled_from([8, 32, 64]))
    def test_throughput_scales_positively(self, seed, gpus):
        spec = random_model_spec(seed, total_parameters=30_000_000)
        small = quick(spec, "aiacc", gpus=8)
        large = quick(spec, "aiacc", gpus=gpus)
        assert large.throughput >= small.throughput * 0.95 * (gpus / 8) \
            / 4  # generous floor: at least quarter-linear scaling

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        spread=st.floats(0.0, 2.5),
    )
    def test_schedule_well_formed(self, seed, spread):
        spec = random_model_spec(seed, size_spread=spread)
        events = spec.backward_schedule()
        fractions = [e.time_fraction for e in events]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)
        scheduled = sum(len(e.parameters) for e in events)
        assert scheduled == spec.num_gradients


class TestGeneratorValidation:
    def test_totals_respected(self):
        spec = random_model_spec(0, num_layers=10,
                                 total_parameters=1_000_000,
                                 total_forward_flops=1e9)
        assert spec.num_parameters == pytest.approx(1_000_000, rel=0.05)
        assert spec.forward_flops == pytest.approx(1e9, rel=1e-6)

    def test_deterministic_per_seed(self):
        a = random_model_spec(7)
        b = random_model_spec(7)
        assert a.num_parameters == b.num_parameters
        assert [l.name for l in a.layers] == [l.name for l in b.layers]

    def test_spread_zero_gives_equal_layers(self):
        spec = random_model_spec(1, num_layers=8, size_spread=0.0,
                                 total_parameters=8_000_000)
        sizes = [layer.num_parameters for layer in spec.layers]
        assert max(sizes) < 1.5 * min(sizes)

    def test_validation(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            random_model_spec(0, num_layers=0)
        with pytest.raises(ReproError):
            random_model_spec(0, total_forward_flops=0)
