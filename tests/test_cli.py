"""Tests for the command-line interface."""

import json
import pathlib

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_bench_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out
        assert "bert-large" in out

    def test_train(self, capsys):
        assert main(["train", "--model", "resnet50", "--gpus", "16"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "scaling efficiency" in out

    def test_train_with_aiacc_overrides(self, capsys):
        assert main(["train", "--gpus", "16", "--streams", "4",
                     "--granularity-mb", "8"]) == 0

    def test_train_rdma(self, capsys):
        assert main(["train", "--model", "gpt2-xl", "--gpus", "16",
                     "--rdma"]) == 0

    def test_train_unknown_backend_errors(self, capsys):
        assert main(["train", "--backend", "gloo", "--gpus", "8"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bench_single_experiment(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Horovod" in out or "horovod" in out
        assert (tmp_path / "results" / "fig2.md").exists()

    def test_tune(self, capsys):
        assert main(["tune", "--model", "resnet50", "--gpus", "16",
                     "--budget", "6"]) == 0
        out = capsys.readouterr().out
        assert "streams:" in out
        assert "algorithm:" in out

    def test_translate_horovod(self, capsys, tmp_path):
        script = tmp_path / "train.py"
        script.write_text("import horovod.torch as hvd\n")
        assert main(["translate", str(script)]) == 0
        assert "repro.core.perseus" in capsys.readouterr().out

    def test_translate_sequential_to_file(self, tmp_path, capsys):
        script = tmp_path / "train.py"
        script.write_text("opt = SGD(lr=0.1)\n")
        output = tmp_path / "out.py"
        assert main(["translate", str(script), "--mode", "sequential",
                     "--workers", "4", "--output", str(output)]) == 0
        assert "DistributedOptimizer" in output.read_text()

    def test_translate_error_reported(self, tmp_path, capsys):
        script = tmp_path / "train.py"
        script.write_text("x = 1\n")
        assert main(["translate", str(script), "--mode",
                     "sequential"]) == 1
        assert "error:" in capsys.readouterr().err


class TestFaultsCommand:
    def test_faults_scripted_crash(self, capsys):
        assert main(["faults", "--model", "resnet50", "--gpus", "16",
                     "--iterations", "6", "--checkpoint-interval", "2",
                     "--crash-node", "1", "--crash-at", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "16 -> 8 GPUs" in out
        assert "recovery 0:" in out
        assert "goodput" in out
        assert "aiacc.faults.confirm: 1" in out

    def test_faults_poisson_schedule(self, capsys):
        assert main(["faults", "--model", "resnet50", "--gpus", "16",
                     "--iterations", "4", "--mtbf", "20", "--seed",
                     "3"]) == 0
        assert "injected crashes:" in capsys.readouterr().out

    def test_faults_trace_output(self, capsys, tmp_path):
        trace_out = tmp_path / "faults.json"
        assert main(["faults", "--model", "resnet50", "--gpus", "16",
                     "--iterations", "4", "--checkpoint-interval", "2",
                     "--crash-node", "1", "--crash-at", "0.3",
                     "--trace-out", str(trace_out)]) == 0
        events = json.loads(trace_out.read_text())
        assert any(ev.get("name") == "aiacc.fault.inject" for ev in events)

    def test_faults_rejects_small_cluster(self, capsys):
        assert main(["faults", "--model", "resnet50", "--gpus", "8"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_chaos_soak(self, capsys, tmp_path):
        jsonl = tmp_path / "chaos.jsonl"
        assert main(["chaos", "--seeds", "4", "--replays", "2",
                     "--jsonl", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "completed:" in out
        assert "seed   0" in out
        assert len(jsonl.read_text().strip().splitlines()) == 4

    def test_chaos_typed_failures_exit_zero(self, capsys):
        # Typed clean failures are expected chaos outcomes, not harness
        # errors: a sweep containing them still exits 0.
        assert main(["chaos", "--seeds", "6", "--replays", "1",
                     "--mtbf", "0.2"]) == 0
        assert "clean failures:" in capsys.readouterr().out


class TestNewBenchEntries:
    @pytest.mark.parametrize("experiment", ["congested", "insightface",
                                            "futuregpu"])
    def test_bench_entry_runs(self, experiment, capsys, tmp_path,
                              monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", experiment]) == 0
        assert (tmp_path / "results" / f"{experiment}.md").exists()

    def test_bench_chart_rendered_for_congested(self, capsys, tmp_path,
                                                monkeypatch):
        monkeypatch.chdir(tmp_path)
        main(["bench", "congested"])
        out = capsys.readouterr().out
        assert "#" in out  # the ascii bar chart
