"""Chaos soak harness tests (`repro.harness.chaos`).

The contract under test: every random schedule terminates — completion
or a *typed* clean error — with a per-seed outcome digest that is
deterministic across replays.
"""

import json

import pytest

from repro.errors import ReproError
from repro.harness.chaos import (
    ChaosOutcome,
    default_chaos_model,
    run_chaos_case,
    run_chaos_soak,
)


class TestChaosCase:
    def test_single_seed_terminates(self):
        outcome, result = run_chaos_case(seed=1)
        assert outcome.seed == 1
        assert outcome.completed == (result is not None)
        assert outcome.status == "completed" or outcome.error
        assert len(outcome.outcome_digest()) == 32

    def test_replay_determinism_per_case(self):
        first, _ = run_chaos_case(seed=3)
        second, _ = run_chaos_case(seed=3)
        assert first.outcome_digest() == second.outcome_digest()
        assert first == second

    def test_typed_clean_failures_with_no_restarts(self):
        # With restarts forbidden, seeds whose schedule crashes a node
        # must fail *cleanly*: a ReproError subclass caught by the
        # harness, never a hang or a bare exception.
        statuses = {}
        for seed in range(8):
            outcome, _ = run_chaos_case(seed=seed, max_restarts=0)
            statuses[seed] = outcome.status
            if not outcome.completed:
                assert outcome.error
                # Replays of a failing seed are just as deterministic.
                again, _ = run_chaos_case(seed=seed, max_restarts=0)
                assert again.outcome_digest() == outcome.outcome_digest()
        assert "TrainingError" in statuses.values()


class TestChaosSoak:
    def test_twenty_seeds_terminate_deterministically(self):
        report = run_chaos_soak(range(20), replays=2)
        assert len(report.outcomes) == 20
        assert report.replays == 2
        assert report.completed + report.clean_failures == 20
        # The soak actually exercises the elastic runtime: membership
        # transitions happen across the sweep, at varying world sizes.
        transitions = sum(o.epoch_transitions for o in report.outcomes)
        assert transitions > 0
        worlds = {o.final_world for o in report.outcomes if o.completed}
        assert len(worlds) > 1

    def test_jsonl_artifact_structure(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        report = run_chaos_soak(range(3), replays=1, jsonl_path=path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        for line, outcome in zip(lines, report.outcomes):
            record = json.loads(line)
            assert record["seed"] == outcome.seed
            assert record["status"] == outcome.status
            assert record["outcome_digest"] == outcome.outcome_digest()
            assert isinstance(record["recoveries"], list)
            assert isinstance(record["epoch_transitions"], list)
            for transition in record["epoch_transitions"]:
                assert transition["kind"] in \
                    ("scale-down", "scale-up", "failure")
                assert transition["epoch"] >= 1

    def test_rejects_empty_seed_set_and_bad_replays(self):
        with pytest.raises(ReproError):
            run_chaos_soak([])
        with pytest.raises(ReproError):
            run_chaos_soak([1], replays=0)

    def test_default_model_is_stable(self):
        assert default_chaos_model().name == default_chaos_model().name


class TestOutcomeDigest:
    def make(self, **overrides):
        base = dict(seed=0, status="completed", error=None,
                    planned_faults=3, planned_membership_events=1,
                    state_digest="abc", final_world=8, final_epoch=1,
                    epoch_transitions=1, recoveries=0,
                    wasted_iterations=0, total_time_s=1.5)
        base.update(overrides)
        return ChaosOutcome(**base)

    def test_digest_covers_terminal_state(self):
        base = self.make()
        assert base.outcome_digest() == self.make().outcome_digest()
        for change in (dict(status="TrainingError"),
                       dict(final_world=6),
                       dict(final_epoch=2),
                       dict(state_digest="xyz"),
                       dict(total_time_s=2.0)):
            assert self.make(**change).outcome_digest() != \
                base.outcome_digest()
