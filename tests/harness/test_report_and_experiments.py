"""Tests for report rendering and the experiment helpers."""

import pytest

from repro.errors import ReproError
from repro.harness.experiments import measure, tuned_aiacc_config
from repro.harness.report import (
    format_cell,
    format_table,
    save_report,
    series_summary,
)


class TestFormatCell:
    def test_booleans(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_large_numbers_in_millions(self):
        assert format_cell(25_600_000.0) == "25.6M"

    def test_mid_numbers_with_separators(self):
        assert format_cell(41_475.0) == "41,475"

    def test_small_floats(self):
        assert format_cell(0.7251) == "0.7251"
        assert format_cell(1.28) == "1.28"

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_strings_pass_through(self):
        assert format_cell("ring") == "ring"

    def test_ints_pass_through(self):
        assert format_cell(256) == "256"


class TestFormatTable:
    def test_markdown_structure(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        table = format_table(rows, title="T")
        lines = table.splitlines()
        assert lines[0] == "### T"
        assert lines[2].startswith("| a")
        assert set(lines[3]) <= {"|", "-"}
        assert len(lines) == 6

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        table = format_table(rows, columns=["c", "a"])
        header = table.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_cells_blank(self):
        table = format_table([{"a": 1}, {"a": 2, "b": 3}],
                             columns=["a", "b"])
        assert "3" in table

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            format_table([])

    def test_alignment(self):
        rows = [{"name": "x", "v": 1}, {"name": "longer", "v": 22}]
        lines = format_table(rows).splitlines()
        assert len(lines[0]) == len(lines[2]) == len(lines[3])


class TestSaveReport:
    def test_writes_file(self, tmp_path):
        path = save_report("test", "content", directory=tmp_path)
        assert path.read_text() == "content\n"
        assert path.name == "test.md"

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b"
        save_report("x", "y", directory=nested)
        assert (nested / "x.md").exists()


class TestSeriesSummary:
    def test_collapses_rows(self):
        rows = [{"gpus": 8, "eff": 0.9}, {"gpus": 16, "eff": 0.8}]
        assert series_summary(rows, "gpus", "eff") == {8: 0.9, 16: 0.8}


class TestTunedConfig:
    def test_streams_grow_with_nodes(self):
        small = tuned_aiacc_config("resnet50", 16)
        large = tuned_aiacc_config("resnet50", 256)
        assert large.num_streams > small.num_streams
        assert large.num_streams <= 24

    def test_nlp_gets_larger_granularity(self):
        cv = tuned_aiacc_config("resnet50", 64)
        nlp = tuned_aiacc_config("bert-large", 64)
        assert nlp.granularity_bytes > cv.granularity_bytes

    def test_measure_uses_tuned_config_for_aiacc(self):
        result = measure("resnet50", "aiacc", 16)
        assert result.backend == "aiacc"
        assert result.throughput > 0


class TestAsciiChart:
    def test_bars_scaled_to_peak(self):
        from repro.harness import ascii_chart

        rows = [{"x": "a", "v": 10.0}, {"x": "b", "v": 5.0}]
        chart = ascii_chart(rows, "x", ["v"], width=10)
        lines = chart.splitlines()
        bar_a = lines[1].count("#")
        bar_b = lines[3].count("#")
        assert bar_a == 10
        assert bar_b == 5

    def test_multiple_series_per_group(self):
        from repro.harness import ascii_chart

        rows = [{"g": 8, "aiacc": 100.0, "horovod": 50.0}]
        chart = ascii_chart(rows, "g", ["aiacc", "horovod"])
        assert "aiacc" in chart and "horovod" in chart

    def test_missing_values_skipped(self):
        from repro.harness import ascii_chart

        rows = [{"g": 1, "a": 1.0}, {"g": 2, "a": 2.0, "b": 1.0}]
        chart = ascii_chart(rows, "g", ["a", "b"])
        assert chart.count("|") == 3

    def test_empty_rejected(self):
        from repro.errors import ReproError
        from repro.harness import ascii_chart

        with pytest.raises(ReproError):
            ascii_chart([], "x", ["v"])

    def test_nonpositive_rejected(self):
        from repro.errors import ReproError
        from repro.harness import ascii_chart

        with pytest.raises(ReproError):
            ascii_chart([{"x": 1, "v": 0.0}], "x", ["v"])
