"""Atomic file-write helpers (`repro.ioutil`)."""

import json

import pytest

from repro.ioutil import atomic_write_json, atomic_write_jsonl, \
    atomic_write_text


class TestAtomicWriteText:
    def test_writes_and_returns_path(self, tmp_path):
        target = tmp_path / "out.txt"
        written = atomic_write_text(target, "hello\n")
        assert written == target
        assert target.read_text() == "hello\n"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_file_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_failed_write_leaves_no_temp(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(TypeError):
            atomic_write_text(target, 42)  # type: ignore[arg-type]
        assert list(tmp_path.iterdir()) == []


class TestStructuredWriters:
    def test_json(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"b": 1, "a": 2})
        assert json.loads(target.read_text()) == {"a": 2, "b": 1}

    def test_jsonl_dicts_are_key_sorted(self, tmp_path):
        target = tmp_path / "out.jsonl"
        atomic_write_jsonl(target, [{"b": 1, "a": 2}, {"x": 3}])
        lines = target.read_text().splitlines()
        assert lines == ['{"a": 2, "b": 1}', '{"x": 3}']

    def test_jsonl_passes_through_preserialized_lines(self, tmp_path):
        target = tmp_path / "out.jsonl"
        atomic_write_jsonl(target, ['{"already": "json"}'])
        assert target.read_text() == '{"already": "json"}\n'
