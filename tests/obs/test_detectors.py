"""Unit-level detector tests: each rule fed synthetic hook events."""

import dataclasses

import pytest

from repro.errors import ReproError
from repro.obs import MetricsRegistry
from repro.obs.detectors import (
    DetectorConfig,
    DetectorSuite,
    LinkUtilisationSampler,
    Severity,
    parse_severity,
)


@dataclasses.dataclass(frozen=True)
class FakeAttribution:
    """Just the fields the detector rules read."""

    rank: int
    step: int
    compute_s: float
    negotiate_s: float
    step_time_s: float


def attribution(rank, compute_s, negotiate_s=0.0, step_time_s=1.0):
    return FakeAttribution(rank=rank, step=0, compute_s=compute_s,
                           negotiate_s=negotiate_s,
                           step_time_s=step_time_s)


class FakeLink:
    def __init__(self, name, capacity_bps):
        self.name = name
        self.capacity_bps = capacity_bps


class FakeFlow:
    def __init__(self, rate_bps, links):
        self.rate_bps = rate_bps
        self.links = links

    def member_link_sets(self):
        return (self.links,)


class TestSeverity:
    def test_parse_is_case_insensitive(self):
        assert parse_severity("warn") is Severity.WARN
        assert parse_severity("ERROR") is Severity.ERROR

    def test_parse_rejects_unknown(self):
        with pytest.raises(ReproError):
            parse_severity("fatal")

    def test_ordering(self):
        assert Severity.INFO < Severity.WARN < Severity.ERROR \
            < Severity.CRITICAL


class TestStragglerRule:
    def test_outlier_rank_flagged_from_attributions(self):
        suite = DetectorSuite()
        attrs = [attribution(rank, 1.0) for rank in range(3)] \
            + [attribution(3, 3.0)]
        events = suite.finalize(attrs)
        assert [(e.kind, e.subject) for e in events] == \
            [("straggler", "rank 3")]
        # 3x the median is past the 2x-threshold escalation point.
        assert events[0].severity is Severity.ERROR

    def test_balanced_cohort_is_quiet(self):
        suite = DetectorSuite()
        events = suite.finalize(
            [attribution(rank, 1.0) for rank in range(4)])
        assert events == ()

    def test_fallback_uses_raw_step_durations(self):
        suite = DetectorSuite()
        for rank in range(4):
            suite.observe_step(rank, 0, 2.0 if rank == 1 else 1.0,
                               end_s=1.0)
        events = suite.finalize(None)
        assert [(e.kind, e.subject) for e in events] == \
            [("straggler", "rank 1")]

    def test_single_rank_never_flagged(self):
        suite = DetectorSuite()
        suite.observe_step(0, 0, 5.0, end_s=5.0)
        assert suite.finalize(None) == ()


class TestRootCauseSuppression:
    def test_straggler_suppresses_negotiation_blowup(self):
        suite = DetectorSuite()
        # The healthy ranks' "negotiation" is really them waiting on the
        # straggler; the straggler finding must stand alone.
        attrs = [attribution(rank, 0.2, negotiate_s=0.7)
                 for rank in range(3)] + [attribution(3, 0.9)]
        kinds = {e.kind for e in suite.finalize(attrs)}
        assert kinds == {"straggler"}

    def test_negotiation_blowup_fires_without_straggler(self):
        suite = DetectorSuite()
        attrs = [attribution(rank, 0.2, negotiate_s=0.5)
                 for rank in range(4)]
        events = suite.finalize(attrs)
        assert [(e.kind, e.subject) for e in events] == \
            [("negotiation-overhead", "sync")]


class TestImbalanceRule:
    def make_suite(self, busy_by_stream, run_s=10.0):
        suite = DetectorSuite()
        suite.observe_step(0, 0, run_s, end_s=run_s)
        for stream, busy in busy_by_stream.items():
            suite.observe_stream_span(0, stream, busy, nbytes=1e6)
        return suite

    def test_dominant_share_flagged(self):
        suite = self.make_suite({0: 8.0, 1: 1.0})
        events = suite.finalize(None)
        assert [(e.kind, e.subject, e.severity) for e in events] == \
            [("stream-imbalance", "rank 0", Severity.WARN)]
        assert events[0].value == pytest.approx(8.0 / 9.0)

    def test_essentially_alone_escalates(self):
        suite = self.make_suite({0: 9.9, 1: 0.05})
        assert suite.finalize(None)[0].severity is Severity.ERROR

    def test_even_split_is_quiet(self):
        suite = self.make_suite({0: 3.0, 1: 2.9, 2: 3.1})
        assert suite.finalize(None) == ()

    def test_insignificant_busy_time_is_quiet(self):
        # Share is extreme but the busiest stream covers only 10% of
        # the run (< imbalance_busy_frac): serialized-dispatch noise.
        suite = self.make_suite({0: 1.0, 1: 0.01})
        assert suite.finalize(None) == ()

    def test_single_stream_is_quiet(self):
        suite = self.make_suite({0: 9.0})
        assert suite.finalize(None) == ()


class TestLinkUtilisationSampler:
    def test_integrates_per_link_load(self):
        sampler = LinkUtilisationSampler(saturation=0.9)
        link = FakeLink("core", 100.0)
        sampler.observe_interval(2.0, [FakeFlow(50.0, [link]),
                                       FakeFlow(50.0, [link])])
        sampler.observe_interval(3.0, [FakeFlow(10.0, [link])])
        observed, saturated, weighted = sampler.links["core"]
        assert observed == pytest.approx(5.0)
        assert saturated == pytest.approx(2.0)  # only the 100% interval
        assert weighted == pytest.approx(2.0 * 1.0 + 3.0 * 0.1)

    def test_idle_flows_and_zero_elapsed_ignored(self):
        sampler = LinkUtilisationSampler()
        link = FakeLink("core", 100.0)
        sampler.observe_interval(0.0, [FakeFlow(50.0, [link])])
        sampler.observe_interval(1.0, [FakeFlow(0.0, [link])])
        assert sampler.links == {}


class TestCongestionRule:
    def prime(self, suite, sustained=1.0, throttled_frac=1.0):
        suite.link_sampler.links["core"] = [10.0, 10.0 * sustained, 9.0]
        suite.observe_flow(["core"], "ring", 60.0, 1.0,
                           throttled=throttled_frac >= 0.5)
        suite.observe_flow(["core"], "ring", 40.0, 1.0,
                           throttled=throttled_frac >= 1.0)

    def test_sustained_and_throttled_link_flagged(self):
        suite = DetectorSuite()
        self.prime(suite, sustained=1.0, throttled_frac=1.0)
        events = suite.finalize(None)
        assert [(e.kind, e.subject) for e in events] == \
            [("congestion", "link core")]
        assert "by algorithm: ring=" in events[0].detail

    def test_hot_but_unthrottled_is_quiet(self):
        # Healthy pipelining: saturated, but every flow ran at its cap.
        suite = DetectorSuite()
        self.prime(suite, sustained=1.0, throttled_frac=0.0)
        assert suite.finalize(None) == ()

    def test_throttled_but_not_sustained_is_quiet(self):
        # Victim links: streams below cap, but the link is not the one
        # running hot — blame lands on the saturated bottleneck only.
        suite = DetectorSuite()
        self.prime(suite, sustained=0.2, throttled_frac=1.0)
        assert suite.finalize(None) == ()


class TestTunerRule:
    def test_regression_vs_warm_start_flagged(self):
        suite = DetectorSuite()
        suite.observe_tuner_trial(0, "cache", 0.10)
        for index in range(3):
            suite.observe_tuner_trial(index + 1, "grid", 0.20)
        events = suite.finalize(None)
        assert [(e.kind, e.subject) for e in events] == \
            [("tuner-regression", "tuner")]

    def test_needs_minimum_trials(self):
        suite = DetectorSuite()
        suite.observe_tuner_trial(0, "cache", 0.10)
        suite.observe_tuner_trial(1, "grid", 0.50)
        assert suite.finalize(None) == ()

    def test_within_margin_is_quiet(self):
        suite = DetectorSuite()
        suite.observe_tuner_trial(0, "cache", 0.10)
        for index in range(4):
            suite.observe_tuner_trial(index + 1, "grid", 0.102)
        assert suite.finalize(None) == ()

    def test_no_warm_start_is_quiet(self):
        suite = DetectorSuite()
        for index in range(5):
            suite.observe_tuner_trial(index, "grid", 0.5)
        assert suite.finalize(None) == ()


class TestRegistryRoundTrip:
    def test_publish_then_seed_reproduces_events(self):
        config = DetectorConfig()
        live = DetectorSuite(config)
        live.link_sampler.links["core"] = [10.0, 8.0, 9.5]
        live.observe_flow(["core"], "hierarchical", 100.0, 1.0,
                          throttled=True)
        live.observe_tuner_trial(0, "cache", 0.10)
        for index in range(3):
            live.observe_tuner_trial(index + 1, "bayes", 0.30)

        registry = MetricsRegistry()
        live.publish(registry)

        replayed = DetectorSuite(config)
        replayed.seed_from_registry(registry)
        assert replayed.finalize(None) == live.finalize(None)

    def test_publish_is_idempotent(self):
        live = DetectorSuite()
        live.observe_flow(["core"], None, 100.0, 1.0, throttled=True)
        registry = MetricsRegistry()
        live.publish(registry)
        live.publish(registry)
        replayed = DetectorSuite()
        replayed.seed_from_registry(registry)
        assert replayed._link_flows == live._link_flows


class TestCanonicalOrdering:
    def test_events_sorted_by_detector_kind_subject(self):
        suite = DetectorSuite()
        # Two congested links + a tuner regression, fed out of order.
        for name in ("zeta", "alpha"):
            suite.link_sampler.links[name] = [10.0, 10.0, 9.5]
            suite.observe_flow([name], None, 100.0, 1.0, throttled=True)
        suite.observe_tuner_trial(0, "cache", 0.10)
        for index in range(3):
            suite.observe_tuner_trial(index + 1, "grid", 0.30)
        subjects = [e.subject for e in suite.finalize(None)]
        assert subjects == ["link alpha", "link zeta", "tuner"]
