"""The regression sentinel: SLO evaluation + baseline loaders."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    DEFAULT_SLOS,
    MetricsRegistry,
    SLO,
    evaluate_slos,
    load_bench_baseline,
    load_campaign_baseline,
    load_slos,
)
from repro.obs.baselines import Baseline


def bench_file(tmp_path, entries):
    path = tmp_path / "BENCH_simulator.json"
    path.write_text(json.dumps(entries))
    return path


class TestSLODeclaration:
    def test_needs_some_bound(self):
        with pytest.raises(ReproError):
            SLO(name="x", metric="m")

    def test_baseline_bound_alone_is_enough(self):
        SLO(name="x", metric="m", baseline_key="k", baseline_ratio=1.1)


class TestEvaluateSLOs:
    def test_absolute_max_ok_and_breach(self):
        slo = SLO(name="x", metric="m", max_value=1.0)
        (ok,) = evaluate_slos([slo], {"m": 0.5})
        assert not ok.breached and not ok.skipped and ok.verdict == "ok"
        (breach,) = evaluate_slos([slo], {"m": 1.5})
        assert breach.breached and breach.verdict == "BREACH"

    def test_min_bound(self):
        slo = SLO(name="eff", metric="m", min_value=0.5)
        (breach,) = evaluate_slos([slo], {"m": 0.4})
        assert breach.breached

    def test_relative_limit_folds_baseline(self):
        slo = SLO(name="x", metric="m", baseline_key="base",
                  baseline_ratio=1.10)
        baseline = Baseline(source="test", values={"base": 1.0})
        (ok,) = evaluate_slos([slo], {"m": 1.05}, baseline=baseline)
        assert not ok.breached and ok.limit == pytest.approx(1.10)
        (breach,) = evaluate_slos([slo], {"m": 1.2}, baseline=baseline)
        assert breach.breached

    def test_tightest_of_absolute_and_relative_wins(self):
        slo = SLO(name="x", metric="m", max_value=1.05,
                  baseline_key="base", baseline_ratio=1.10)
        baseline = Baseline(source="test", values={"base": 1.0})
        (result,) = evaluate_slos([slo], {"m": 1.07}, baseline=baseline)
        assert result.limit == pytest.approx(1.05)
        assert result.breached

    def test_unmeasured_metric_skips_with_reason(self):
        slo = SLO(name="x", metric="m", max_value=1.0)
        (result,) = evaluate_slos([slo], {})
        assert result.skipped and not result.breached
        assert "no measurement" in result.reason

    def test_missing_baseline_skips_not_passes(self):
        slo = SLO(name="x", metric="m", baseline_key="base",
                  baseline_ratio=1.10)
        (result,) = evaluate_slos([slo], {"m": 99.0})
        assert result.skipped and not result.breached
        assert "baseline" in result.reason

    def test_histogram_fallback_reads_registry_quantile(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("step_seconds",
                                       buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        slo = SLO(name="p99", metric="missing_key", max_value=1.0,
                  histogram="step_seconds", quantile=0.99)
        (result,) = evaluate_slos([slo], {}, registry=registry)
        assert not result.skipped
        assert result.observed == pytest.approx(
            histogram.quantile(0.99))
        assert result.breached  # p99 lands in the (1, 10] bucket

    def test_default_slos_cover_the_issue_objectives(self):
        metrics = {slo.metric for slo in DEFAULT_SLOS}
        assert metrics == {"step_time_p99_s", "scaling_efficiency",
                           "recovery_time_s", "obs_overhead_frac"}


class TestLoadSLOs:
    def test_round_trips_a_valid_file(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(json.dumps({"slos": [
            {"name": "x", "metric": "m", "max_value": 1.0},
            {"name": "y", "metric": "n", "baseline_key": "k",
             "baseline_ratio": 1.2},
        ]}))
        slos = load_slos(path)
        assert [slo.name for slo in slos] == ["x", "y"]

    def test_bare_list_accepted(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(json.dumps(
            [{"name": "x", "metric": "m", "max_value": 1.0}]))
        assert len(load_slos(path)) == 1

    def test_missing_file_typed_error(self, tmp_path):
        with pytest.raises(ReproError):
            load_slos(tmp_path / "nope.json")

    def test_corrupt_json_typed_error(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text("{not json")
        with pytest.raises(ReproError):
            load_slos(path)

    def test_unknown_keys_typed_error(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(json.dumps([{"name": "x", "metric": "m",
                                     "max_value": 1.0, "typo": 1}]))
        with pytest.raises(ReproError, match="unknown keys"):
            load_slos(path)

    def test_unbounded_slo_typed_error(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(json.dumps([{"name": "x", "metric": "m"}]))
        with pytest.raises(ReproError):
            load_slos(path)


class TestBenchBaseline:
    ENTRIES = [
        {"label": "old", "scenarios": {
            "step-8r-4s": {"ranks": 8, "simulated_step_s": 0.30,
                           "model": "resnet50", "congested": False}}},
        {"label": "new", "scenarios": {
            "step-8r-4s": {"ranks": 8, "simulated_step_s": 0.225,
                           "model": "resnet50", "congested": False}}},
    ]

    def test_latest_entry_by_default(self, tmp_path):
        baseline = load_bench_baseline(bench_file(tmp_path, self.ENTRIES))
        assert baseline.meta["label"] == "new"
        assert baseline.values["simulated_step_s"] == pytest.approx(0.225)
        # Numerics land in values, strings/bools in meta.
        assert baseline.values["ranks"] == 8.0
        assert baseline.meta["congested"] == "false"

    def test_label_selects_an_older_capture(self, tmp_path):
        baseline = load_bench_baseline(bench_file(tmp_path, self.ENTRIES),
                                       label="old")
        assert baseline.values["simulated_step_s"] == pytest.approx(0.30)

    def test_unknown_label_lists_available(self, tmp_path):
        with pytest.raises(ReproError, match="old"):
            load_bench_baseline(bench_file(tmp_path, self.ENTRIES),
                                label="nope")

    def test_unknown_scenario_lists_available(self, tmp_path):
        with pytest.raises(ReproError, match="step-8r-4s"):
            load_bench_baseline(bench_file(tmp_path, self.ENTRIES),
                                scenario="nope")

    def test_missing_and_corrupt_files_typed(self, tmp_path):
        with pytest.raises(ReproError):
            load_bench_baseline(tmp_path / "nope.json")
        path = tmp_path / "bad.json"
        path.write_text("[")
        with pytest.raises(ReproError):
            load_bench_baseline(path)

    def test_committed_bench_file_loads(self):
        # The repo's own pinned trajectory must stay loadable: this is
        # what `python -m repro diagnose` measures against in CI.
        baseline = load_bench_baseline("BENCH_simulator.json")
        assert baseline.values["simulated_step_s"] > 0
        assert baseline.meta["scenario"] == "step-8r-4s"


class TestCampaignBaseline:
    def make_store(self, tmp_path, results):
        from repro.campaign.grid import CampaignGrid, expand_grids
        from repro.campaign.store import CampaignStore

        path = tmp_path / "campaigns.db"
        with CampaignStore(path) as store:
            campaign_id = store.create_campaign("test")
            specs = expand_grids([CampaignGrid(
                runner="measure",
                axes={"cell": tuple(range(len(results)))})])
            store.add_runs(campaign_id, specs)
            for result in results:
                row = store.claim_next(campaign_id, "w", 10.0)
                store.mark_running(campaign_id, row.spec_id,
                                   row.claim_token)
                store.record_done(campaign_id, row.spec_id,
                                  row.claim_token, result, 0.1)
        return path

    def test_best_done_cell_becomes_the_baseline(self, tmp_path):
        path = self.make_store(tmp_path, [
            {"mean_iteration_s": 0.5, "scaling_efficiency": 0.8,
             "model": "resnet50"},
            {"mean_iteration_s": 0.3, "scaling_efficiency": 0.9,
             "model": "resnet50"},
        ])
        baseline = load_campaign_baseline(path)
        assert baseline.values["simulated_step_s"] == pytest.approx(0.3)
        assert baseline.values["scaling_efficiency"] == pytest.approx(0.9)
        assert baseline.meta["model"] == "resnet50"

    def test_no_completed_cell_typed_error(self, tmp_path):
        path = self.make_store(tmp_path, [{"note": "no-iteration-time"}])
        with pytest.raises(ReproError, match="mean_iteration_s"):
            load_campaign_baseline(path)


class TestJobSlos:
    """Per-job SLO sentinels for the shared-fabric runtime."""

    def test_sentinel_shape(self):
        from repro.obs.slo import job_slos

        (slo,) = job_slos("jobA", baseline_step_s=0.2, slack_ratio=1.5)
        assert slo.name == "job:jobA:step_time"
        assert slo.metric == "job:jobA:step_time_s"
        assert slo.max_value == pytest.approx(0.3)
        assert slo.min_value is None

    def test_breach_evaluation(self):
        from repro.obs.slo import job_slos

        slos = job_slos("j", baseline_step_s=0.1, slack_ratio=2.0)
        ok = evaluate_slos(slos, {"job:j:step_time_s": 0.15})
        hot = evaluate_slos(slos, {"job:j:step_time_s": 0.25})
        assert not any(r.breached for r in ok)
        assert all(r.breached for r in hot)

    def test_invalid_inputs_rejected(self):
        from repro.obs.slo import job_slos

        with pytest.raises(ReproError):
            job_slos("j", baseline_step_s=0.0)
        with pytest.raises(ReproError):
            job_slos("j", baseline_step_s=0.1, slack_ratio=1.0)
