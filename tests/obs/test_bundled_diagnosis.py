"""Bundled fan-outs must diagnose identically to unbundled ones.

The vectorized hot state lets the fluid network fuse a homogeneous ring
fan-out into one :class:`~repro.sim.network.GroupFlow` solver entity.
That fusion is a performance representation only: the observability
layer unrolls groups member by member (``member_link_sets``), so every
per-link utilisation integral, flow record and therefore every
diagnosis finding — including the ``findings_digest`` the golden
findings file pins — must be bit-identical whether the fan-out ran
bundled or as individual flows.
"""

import repro.collectives.timed as timed_mod
from repro.collectives import TimedCollectives
from repro.obs import Observability, diagnose
from repro.obs.detectors import DetectorSuite
from repro.obs.metrics import MetricsRegistry
from repro.sim import FluidNetwork, Link, Simulator, alibaba_v100_cluster


def _feed_engine_hooks(suite):
    """Identical engine-side telemetry for both runs.

    Two ranks, two steps each, and a lopsided stream split on rank 0 so
    the stream-imbalance detector has something to say; the network
    feeds the congestion detector itself.
    """
    for rank in (0, 1):
        suite.observe_step(rank, 0, 1.0, 1.0)
        suite.observe_step(rank, 1, 1.0, 2.0)
    suite.observe_stream_span(0, 0, 0.9, 8e6)
    suite.observe_stream_span(0, 1, 0.001, 1e3)
    suite.observe_stream_span(1, 0, 0.45, 4e6)
    suite.observe_stream_span(1, 1, 0.45, 4e6)


def _run_network_scenario(bundled):
    """One saturated 3-member fan-out, bundled or member-by-member.

    Each member crosses two private 1 Gb/s links with a 4 Gb/s rate cap,
    so every member finishes saturated (utilisation 1.0 the whole time)
    and throttled (achieved rate far below cap) — the congestion
    detector fires for all six links.
    """
    sim = Simulator()
    net = FluidNetwork(sim)
    obs = Observability()
    net.obs = obs
    net.diag = obs.attach_detectors()
    members = [[Link(f"m{i}a", 1e9), Link(f"m{i}b", 1e9)]
               for i in range(3)]
    net.flow_label = "ring"
    if bundled:
        done = [net.start_flow_group(members, 1e6, rate_cap_bps=4e9)]
    else:
        done = [net.start_flow(member, 1e6, rate_cap_bps=4e9)
                for member in members]
    net.flow_label = None
    sim.run(until=sim.all_of(done))
    sim.run()
    if bundled:  # the fan-out really was fused, not fallen back
        assert net._claims
    else:
        assert not net._claims
    _feed_engine_hooks(net.diag)
    return diagnose(obs)


class TestNetworkLevelEquivalence:
    def test_findings_digest_identical_bundled_or_not(self):
        bundled = _run_network_scenario(bundled=True)
        unbundled = _run_network_scenario(bundled=False)
        assert bundled.findings == unbundled.findings
        assert bundled.events == unbundled.events
        assert bundled.findings_digest == unbundled.findings_digest

    def test_scenario_is_not_vacuous(self):
        report = _run_network_scenario(bundled=True)
        kinds = {finding.kind for finding in report.findings}
        assert "congestion" in kinds
        assert "stream-imbalance" in kinds
        congested = {f.subject for f in report.findings
                     if f.kind == "congestion"}
        assert congested == {f"link m{i}{side}"
                             for i in range(3) for side in "ab"}


class TestCollectiveLevelEquivalence:
    """Same ring allreduce, with the bundling gate forced on and off."""

    def _run(self, monkeypatch, bundle_min_nodes):
        monkeypatch.setattr(timed_mod, "AGGREGATE_MIN_FLOWS", 2)
        monkeypatch.setattr(timed_mod, "RING_BUNDLE_MIN_NODES",
                            bundle_min_nodes)
        sim = Simulator()
        net = FluidNetwork(sim)
        obs = Observability()
        net.obs = obs
        net.diag = obs.attach_detectors()
        cluster = alibaba_v100_cluster(sim, 128, gpus_per_node=8)
        timed = TimedCollectives(sim, net, cluster, representative=False)
        done = timed.allreduce(4e6, algorithm="ring")
        sim.run(until=done)
        sim.run()
        return sim.now, bool(net._claims), diagnose(obs)

    def test_full_ring_diagnoses_identically(self, monkeypatch):
        now_b, claimed_b, bundled = self._run(monkeypatch, 2)
        now_u, claimed_u, unbundled = self._run(monkeypatch, 10**9)
        assert claimed_b and not claimed_u  # the gate actually flipped
        assert now_b == now_u  # completion time is representation-free
        assert bundled.findings == unbundled.findings
        assert bundled.events == unbundled.events
        assert bundled.findings_digest == unbundled.findings_digest
        # A healthy, balanced ring must stay finding-free in both
        # representations (the clean-run gate the detector thresholds
        # are calibrated against).
        assert bundled.findings == ()


class TestJobTaggedBundling:
    """Per-tenant byte attribution must survive GroupFlow fusion.

    The shared-fabric runtime bills each tenant's link bytes from
    ``DetectorSuite.job_link_bytes()``; a bundled fan-out must unroll
    (``member_link_sets``) to exactly the per-link, per-job, per-label
    accounting its unbundled twin produces.
    """

    def _run(self, bundled):
        sim = Simulator()
        net = FluidNetwork(sim)
        obs = Observability()
        net.obs = obs
        net.diag = obs.attach_detectors()
        members = [[Link(f"m{i}a", 1e9), Link(f"m{i}b", 1e9)]
                   for i in range(3)]
        net.flow_job = "jobA"
        net.flow_label = "ring"
        if bundled:
            done = [net.start_flow_group(members, 1e6, rate_cap_bps=4e9)]
        else:
            done = [net.start_flow(member, 1e6, rate_cap_bps=4e9)
                    for member in members]
        # A second tenant on its own links, concurrently.
        net.flow_job = "jobB"
        net.flow_label = "halving-doubling"
        done.append(net.start_flow([Link("b0", 1e9), Link("b1", 1e9)], 2e6))
        net.flow_job = None
        net.flow_label = None
        sim.run(until=sim.all_of(done))
        sim.run()
        return net, net.diag

    def test_job_attribution_identical_bundled_or_not(self):
        net_b, diag_b = self._run(bundled=True)
        net_u, diag_u = self._run(bundled=False)
        assert net_b._claims and not net_u._claims  # fusion really differed
        assert diag_b.job_link_bytes() == diag_u.job_link_bytes()

    def test_bytes_attributed_to_the_correct_tenant(self):
        _, diag = self._run(bundled=True)
        per_job = diag.job_link_bytes()
        for i in range(3):
            for side in "ab":
                assert per_job[(f"m{i}{side}", "jobA", "ring")] == 1e6
        for link in ("b0", "b1"):
            assert per_job[(link, "jobB", "halving-doubling")] == 2e6
        # Private links never leak bytes across tenants.
        jobs_per_link: dict[str, set] = {}
        for link, job, _label in per_job:
            jobs_per_link.setdefault(link, set()).add(job)
        assert all(len(jobs) == 1 for jobs in jobs_per_link.values())

    def test_gauge_round_trip_preserves_attribution(self):
        _, diag = self._run(bundled=True)
        registry = MetricsRegistry()
        diag.publish(registry)
        fresh = DetectorSuite()
        fresh.seed_from_registry(registry)
        assert fresh.job_link_bytes() == diag.job_link_bytes()
