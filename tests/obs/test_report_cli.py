"""End-to-end observability: instrumented runs, report, CLI artifacts."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.runtime import AIACCConfig
from repro.models.synthetic import random_model_spec
from repro.obs import Observability
from repro.obs.report import build_step_report
from repro.training.trainer import run_training


def small_model(seed: int = 0, params: int = 400_000):
    return random_model_spec(seed, num_layers=8,
                             total_parameters=params,
                             total_forward_flops=1e9,
                             compute_occupancy=0.5)


class TestInstrumentedTraining:
    def test_timed_engine_records_phases_and_metrics(self):
        obs = Observability(enabled=True)
        run_training("resnet50", "aiacc", 16, measure_iterations=1,
                     warmup_iterations=0, obs=obs)
        categories = {s.cat for s in obs.timeline.spans}
        assert {"compute", "pack", "negotiate", "network",
                "apply"} <= categories
        assert obs.registry.counter("aiacc_iterations_total").value() \
            == 1.0
        assert obs.registry.counter("aiacc_units_total").value() > 0
        # Step window closed and attributable.
        start, end = obs.timeline.step_window(0, 0)
        assert end > start

    def test_stream_spans_carry_lane_ids(self):
        obs = Observability(enabled=True)
        run_training("resnet50", "aiacc", 16, measure_iterations=1,
                     warmup_iterations=0, obs=obs)
        unit_spans = [s for s in obs.timeline.spans
                      if s.name == "allreduce-unit"]
        assert unit_spans
        assert all(s.stream is not None for s in unit_spans)

    def test_disabled_obs_records_nothing(self):
        obs = Observability.disabled()
        run_training("resnet50", "aiacc", 16, measure_iterations=1,
                     warmup_iterations=0, obs=obs)
        assert not obs.timeline.spans
        assert len(obs.registry) > 0  # handles exist, all quiet
        assert all(not m.samples for m in obs.registry.collect())

    def test_default_obs_does_not_change_results(self):
        baseline = run_training("resnet50", "aiacc", 16,
                                measure_iterations=2, warmup_iterations=0)
        observed = run_training("resnet50", "aiacc", 16,
                                measure_iterations=2, warmup_iterations=0,
                                obs=Observability(enabled=True))
        assert baseline.iteration_times_s == observed.iteration_times_s


class TestStepReport:
    @pytest.fixture(scope="class")
    def report(self):
        return build_step_report(model=small_model(), num_nodes=2,
                                 gpus_per_node=1,
                                 config=AIACCConfig(num_streams=4))

    def test_attribution_sums_to_step_time(self, report):
        assert report.attributions
        assert report.max_conservation_error < 1e-6
        for attribution in report.attributions:
            assert attribution.total_s == \
                pytest.approx(attribution.step_time_s, rel=1e-6)

    def test_one_row_per_rank(self, report):
        assert sorted(a.rank for a in report.attributions) == [0, 1]

    def test_single_stream_tcp_utilisation_at_most_30_percent(self):
        # Paper §III / Fig. 3: one TCP stream reaches ≤30% of the link.
        report = build_step_report(model=small_model(), num_nodes=2,
                                   gpus_per_node=1,
                                   config=AIACCConfig(num_streams=1))
        assert report.link_rows
        for row in report.link_rows:
            assert row["utilisation"] <= 0.30
            assert row["capped"]

    def test_stream_rows_cover_used_lanes(self, report):
        ranks = {row["rank"] for row in report.stream_rows}
        assert ranks == {0, 1}
        assert all(row["units"] >= 1 for row in report.stream_rows)

    def test_numeric_results_unaffected_by_instrumentation(self):
        from repro.core.message_engine import run_message_level_iteration

        spec = small_model()
        bare = run_message_level_iteration(spec, num_nodes=2,
                                           gpus_per_node=1)
        instrumented = run_message_level_iteration(
            spec, num_nodes=2, gpus_per_node=1,
            obs=Observability(enabled=True))
        assert bare.iteration_time_s == instrumented.iteration_time_s
        for left, right in zip(bare.reduced, instrumented.reduced):
            for name in left:
                np.testing.assert_array_equal(left[name], right[name])


class TestReportCli:
    def test_report_command_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "report"
        code = main(["report", "--model", "resnet50", "--nodes", "2",
                     "--gpus-per-node", "1", "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "step-time attribution" in printed
        assert "conservation" in printed
        for name in ("trace.json", "metrics.prom", "timeline.jsonl"):
            assert (out / name).exists(), name
        trace = json.loads((out / "trace.json").read_text())
        pids = {e["pid"] for e in trace if e["ph"] == "X"}
        assert {0, 1} <= pids  # one Perfetto process per rank
        prom = (out / "metrics.prom").read_text()
        assert "aiacc_sync_rounds_total" in prom
        assert "network_flow_utilisation_bucket" in prom
