"""Critical-path attribution: priorities, overlap, conservation."""

import random

import pytest

from repro.obs import StepTimeline, attribute_all, attribute_step, \
    attribute_window


def make_timeline() -> StepTimeline:
    timeline = StepTimeline()
    timeline.begin_step(0, 0, 0.0)
    timeline.end_step(0, 0, 10.0)
    return timeline


class TestPriorities:
    def test_compute_wins_over_overlapping_network(self):
        timeline = make_timeline()
        timeline.span("backward", "compute", 0, 0.0, 6.0)
        timeline.span("unit", "network", 0, 4.0, 8.0, stream=0)
        attribution = attribute_step(timeline, 0, 0)
        assert attribution.compute_s == pytest.approx(6.0)
        # Only the exposed part of the network span is charged.
        assert attribution.network_s == pytest.approx(2.0)
        assert attribution.straggler_s == pytest.approx(2.0)

    def test_negotiation_hidden_behind_compute_not_charged(self):
        timeline = make_timeline()
        timeline.span("backward", "compute", 0, 0.0, 10.0)
        timeline.span("sync", "negotiate", 0, 2.0, 3.0)
        attribution = attribute_step(timeline, 0, 0)
        assert attribution.compute_s == pytest.approx(10.0)
        assert attribution.negotiate_s == 0.0

    def test_empty_window_is_all_straggler(self):
        timeline = make_timeline()
        attribution = attribute_step(timeline, 0, 0)
        assert attribution.straggler_s == pytest.approx(10.0)

    def test_pack_and_apply_count_as_compute(self):
        timeline = make_timeline()
        timeline.span("pack+launch", "pack", 0, 0.0, 1.0)
        timeline.span("apply", "apply", 0, 9.0, 10.0)
        attribution = attribute_step(timeline, 0, 0)
        assert attribution.compute_s == pytest.approx(2.0)

    def test_spans_clipped_to_window(self):
        timeline = make_timeline()
        timeline.span("backward", "compute", 0, -5.0, 5.0)
        timeline.span("unit", "network", 0, 8.0, 20.0)
        attribution = attribute_step(timeline, 0, 0)
        assert attribution.compute_s == pytest.approx(5.0)
        assert attribution.network_s == pytest.approx(2.0)

    def test_other_ranks_ignored(self):
        timeline = make_timeline()
        timeline.span("backward", "compute", 1, 0.0, 10.0)
        assert attribute_step(timeline, 0, 0).compute_s == 0.0


class TestConservation:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_span_soup_sums_to_step_time(self, seed):
        rng = random.Random(seed)
        timeline = make_timeline()
        categories = ("compute", "pack", "negotiate", "network",
                      "staging", "apply")
        for _ in range(rng.randint(5, 60)):
            start = rng.uniform(-2.0, 11.0)
            end = start + rng.uniform(0.0, 5.0)
            timeline.span("s", rng.choice(categories), 0, start, end)
        attribution = attribute_step(timeline, 0, 0)
        assert attribution.total_s == \
            pytest.approx(attribution.step_time_s, rel=1e-6)
        assert attribution.straggler_s >= 0.0

    def test_components_never_negative(self):
        timeline = make_timeline()
        timeline.span("a", "compute", 0, 0.0, 10.0)
        timeline.span("b", "network", 0, 0.0, 10.0)
        attribution = attribute_step(timeline, 0, 0)
        for value in (attribution.compute_s, attribution.negotiate_s,
                      attribution.network_s, attribution.straggler_s):
            assert value >= 0.0


class TestHelpers:
    def test_attribute_all_orders_by_step_then_rank(self):
        timeline = StepTimeline()
        for rank in (1, 0):
            for step in (1, 0):
                timeline.begin_step(rank, step, float(step))
                timeline.end_step(rank, step, float(step) + 1.0)
        rows = attribute_all(timeline)
        assert [(a.step, a.rank) for a in rows] == \
            [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_window_validation(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            attribute_window(StepTimeline(), 0, 5.0, 1.0)

    def test_as_row_is_milliseconds(self):
        timeline = make_timeline()
        timeline.span("backward", "compute", 0, 0.0, 10.0)
        row = attribute_step(timeline, 0, 0).as_row()
        assert row["step_ms"] == pytest.approx(10_000.0)
        assert row["compute_ms"] == pytest.approx(10_000.0)
