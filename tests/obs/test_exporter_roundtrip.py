"""Exporter round-trips against *real* instrumented runs.

The unit tests in ``test_timeline_and_exporters.py`` exercise each
exporter on hand-built timelines; these tests drive the actual
simulator and assert the two contracts downstream tooling relies on:

* ``chrome_trace_events`` emits schema-valid Trace Event JSON — every
  event carries the required keys for its phase and timestamps are
  monotonic within each ``(pid, tid)`` track, so Perfetto renders it
  without warnings;
* ``jsonl_records`` is byte-stable — two identical runs produce
  byte-identical ``timeline.jsonl`` artifacts, the property the
  diagnosis digest matrix builds on.
"""

import json

import pytest

from repro.obs import Observability, chrome_trace_events, write_artifacts
from repro.training.trainer import run_training

#: Keys Perfetto/chrome://tracing require per event phase.
REQUIRED_KEYS = {
    "X": {"name", "cat", "ph", "ts", "dur", "pid", "tid"},
    "i": {"name", "cat", "ph", "ts", "pid", "tid", "s"},
    "s": {"name", "cat", "ph", "ts", "pid", "tid", "id"},
    "t": {"name", "cat", "ph", "ts", "pid", "tid", "id"},
    "f": {"name", "cat", "ph", "ts", "pid", "tid", "id", "bp"},
    "M": {"name", "ph", "pid", "args"},
}


def instrumented_run():
    obs = Observability(enabled=True)
    obs.attach_detectors()
    run_training("resnet50", "aiacc", 8, measure_iterations=2,
                 warmup_iterations=1, obs=obs)
    return obs


@pytest.fixture(scope="module")
def trace_events():
    return chrome_trace_events(instrumented_run().timeline)


class TestChromeTraceSchema:
    def test_every_event_has_its_phase_required_keys(self, trace_events):
        assert trace_events
        for event in trace_events:
            required = REQUIRED_KEYS.get(event["ph"])
            assert required is not None, \
                f"unexpected phase {event['ph']!r}"
            missing = required - set(event)
            assert not missing, \
                f"{event['ph']!r} event {event.get('name')!r} " \
                f"missing {sorted(missing)}"

    def test_timestamps_are_monotonic_per_track(self, trace_events):
        last = {}
        for event in trace_events:
            if event["ph"] == "M":
                continue
            track = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(track, float("-inf")), \
                f"ts went backwards on track {track}"
            last[track] = event["ts"]
        assert last  # at least one real track was exercised

    def test_durations_non_negative_and_finite(self, trace_events):
        for event in trace_events:
            if event["ph"] != "X":
                continue
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_every_track_is_named(self, trace_events):
        named_processes = {e["pid"] for e in trace_events
                           if e.get("name") == "process_name"}
        named_threads = {(e["pid"], e["tid"]) for e in trace_events
                         if e.get("name") == "thread_name"}
        for event in trace_events:
            if event["ph"] == "M":
                continue
            assert event["pid"] in named_processes
            assert (event["pid"], event["tid"]) in named_threads

    def test_json_round_trip_is_lossless(self, trace_events):
        assert json.loads(json.dumps(trace_events)) == trace_events


class TestJsonlByteStability:
    def test_identical_runs_yield_identical_artifact_bytes(self, tmp_path):
        payloads = []
        for run in range(2):
            obs = instrumented_run()
            written = write_artifacts(tmp_path / f"run{run}",
                                      obs.registry, obs.timeline)
            payloads.append(written["jsonl"].read_bytes())
        assert payloads[0] == payloads[1]
        assert payloads[0]  # non-trivial: the run produced records

    def test_trace_json_is_also_byte_stable(self, tmp_path):
        payloads = []
        for run in range(2):
            obs = instrumented_run()
            written = write_artifacts(tmp_path / f"t{run}",
                                      obs.registry, obs.timeline)
            payloads.append(written["trace"].read_bytes())
        assert payloads[0] == payloads[1]
