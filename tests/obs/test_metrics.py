"""Metrics registry: families, labels, disabled-path overhead."""

import time

import pytest

from repro.errors import ReproError
from repro.obs import MetricsRegistry, Observability


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("units_total", "units")
        counter.inc(rank=0)
        counter.inc(2.0, rank=0)
        counter.inc(rank=1)
        assert counter.value(rank=0) == 3.0
        assert counter.value(rank=1) == 1.0
        assert counter.value(rank=7) == 0.0

    def test_label_order_is_canonical(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(a=1, b=2)
        counter.inc(b=2, a=1)
        assert counter.value(a=1, b=2) == 2.0

    def test_counter_cannot_decrease(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ReproError):
            counter.inc(-1.0)


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5.0, rank=0)
        gauge.add(-2.0, rank=0)
        assert gauge.value(rank=0) == 3.0


class TestHistogram:
    def test_buckets_count_and_sum(self):
        histogram = MetricsRegistry().histogram(
            "h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 50.0, 500.0):
            histogram.observe(value)
        state = histogram.state()
        assert state.bucket_counts == [1, 2, 1]  # 500.0 overflows
        assert state.count == 5
        assert state.sum == pytest.approx(560.5)

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ReproError):
            MetricsRegistry().histogram("h", buckets=())

    def test_quantile_interpolates_within_bucket(self):
        histogram = MetricsRegistry().histogram(
            "h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 50.0):
            histogram.observe(value)
        # p50: target rank 2 lands in the (1, 10] bucket, halfway in.
        assert histogram.quantile(0.5) == pytest.approx(5.5)
        assert histogram.quantile(0.99) == pytest.approx(96.4)
        # p0 clamps to the first populated bucket's lower edge.
        assert histogram.quantile(0.0) == pytest.approx(0.0)

    def test_quantile_overflow_clamps_to_last_bound(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        histogram.observe(1000.0)
        assert histogram.quantile(0.99) == 10.0

    def test_quantile_empty_and_range_errors(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0,))
        assert histogram.quantile(0.5) is None
        histogram.observe(0.5)
        with pytest.raises(ReproError):
            histogram.quantile(1.5)
        with pytest.raises(ReproError):
            histogram.quantile(-0.1)


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")

    def test_invalid_name_rejected(self):
        with pytest.raises(ReproError):
            MetricsRegistry().counter("bad name!")

    def test_collect_preserves_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("b_second")
        registry.counter("a_first")
        assert [m.name for m in registry.collect()] == \
            ["b_second", "a_first"]

    def test_set_enabled_flips_existing_handles(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        counter.inc()
        assert counter.value() == 0.0
        registry.set_enabled(True)
        counter.inc()
        assert counter.value() == 1.0


class TestCardinalityGuard:
    def test_cap_drops_new_label_sets_and_warns_once(self, caplog):
        registry = MetricsRegistry(max_label_sets=3)
        counter = registry.counter("c", "capped family")
        with caplog.at_level("WARNING", logger="repro.obs"):
            for rank in range(10):
                counter.inc(rank=rank)
        assert len(counter.samples) == 3
        assert counter.dropped_label_sets == 7
        assert registry.dropped_label_sets == 7
        warnings = [r for r in caplog.records
                    if "label sets" in r.getMessage()]
        assert len(warnings) == 1  # warn-once, not once per drop

    def test_existing_label_sets_keep_recording_past_the_cap(self):
        registry = MetricsRegistry(max_label_sets=2)
        counter = registry.counter("c")
        counter.inc(rank=0)
        counter.inc(rank=1)
        counter.inc(rank=2)  # dropped
        counter.inc(rank=0)  # pre-existing key still records
        assert counter.value(rank=0) == 2.0
        assert counter.value(rank=2) == 0.0
        assert counter.dropped_label_sets == 1

    def test_guard_covers_gauge_and_histogram(self):
        registry = MetricsRegistry(max_label_sets=1)
        gauge = registry.gauge("g")
        gauge.set(1.0, rank=0)
        gauge.set(2.0, rank=1)
        gauge.add(5.0, rank=1)
        assert gauge.value(rank=1) == 0.0
        histogram = registry.histogram("h")
        histogram.observe(1.0, rank=0)
        histogram.observe(1.0, rank=1)
        assert histogram.state(rank=1) is None
        assert registry.dropped_label_sets == 3


class TestDisabledOverhead:
    def test_disabled_records_store_nothing(self):
        obs = Observability.disabled()
        counter = obs.registry.counter("c")
        counter.inc(rank=0)
        obs.registry.gauge("g").set(1.0)
        obs.registry.histogram("h").observe(1.0)
        obs.timeline.span("s", "compute", 0, 0.0, 1.0)
        obs.timeline.instant("i", "fault", 0, 0.5)
        assert not counter.samples
        assert not obs.timeline.spans
        assert not obs.timeline.instants
        assert not obs.enabled

    def test_disabled_inc_is_cheap_smoke(self):
        # The disabled path is a single branch; it must stay within a
        # small constant factor of a bare function call.  Generous 20x
        # bound so the smoke test never flakes on a loaded machine.
        counter = Observability.disabled().registry.counter("c")

        def baseline():
            pass

        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            baseline()
        base = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(n):
            counter.inc()
        disabled = time.perf_counter() - t0
        assert disabled < base * 20 + 0.05
