"""Step timeline recording and the three exporter round-trips."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import (
    NETWORK_RANK,
    MetricsRegistry,
    StepTimeline,
    chrome_trace_events,
    jsonl_lines,
    jsonl_records,
    prometheus_text,
    write_artifacts,
)


def sample_timeline() -> StepTimeline:
    timeline = StepTimeline()
    timeline.begin_step(0, 0, 0.0)
    timeline.span("forward", "compute", 0, 0.0, 0.3)
    timeline.span("sync-round", "negotiate", 0, 0.3, 0.35)
    timeline.span("allreduce-unit", "network", 0, 0.35, 0.8,
                  stream=2, bytes=1e6)
    timeline.span("flow", "net", NETWORK_RANK, 0.35, 0.8,
                  lane="node0.nic.out", utilisation=0.25, bytes=1e6)
    timeline.instant("fault.suspect", "fault", 0, 0.5, phase="sync")
    timeline.end_step(0, 0, 1.0)
    return timeline


class TestStepTimeline:
    def test_step_windows(self):
        timeline = sample_timeline()
        assert timeline.step_window(0, 0) == (0.0, 1.0)
        assert list(timeline.steps()) == [(0, 0, 0.0, 1.0)]
        assert timeline.ranks() == [0]

    def test_end_before_begin_rejected(self):
        timeline = StepTimeline()
        with pytest.raises(ReproError):
            timeline.end_step(0, 0, 1.0)

    def test_backwards_span_rejected(self):
        with pytest.raises(ReproError):
            StepTimeline().span("x", "compute", 0, 2.0, 1.0)

    def test_fault_episode_chains_into_flow(self):
        timeline = StepTimeline()
        timeline.fault_event("inject", 1.0, node=1)
        timeline.fault_event("suspect", 2.0)
        timeline.fault_event("confirm", 3.0)
        timeline.fault_event("restore", 4.0)
        phases = [p.phase for p in timeline.flow_points]
        assert phases == ["start", "step", "step", "end"]
        assert len({p.flow_id for p in timeline.flow_points}) == 1
        # Next inject opens a fresh episode.
        timeline.fault_event("inject", 5.0)
        assert timeline.flow_points[-1].phase == "start"
        assert timeline.flow_points[-1].flow_id != \
            timeline.flow_points[0].flow_id

    def test_merge_respects_disabled_destination(self):
        src = sample_timeline()
        dst = StepTimeline(enabled=False)
        dst.merge(src)
        assert not dst.spans
        enabled_dst = StepTimeline()
        enabled_dst.merge(src)
        assert len(enabled_dst.spans) == len(src.spans)
        assert enabled_dst.step_window(0, 0) == (0.0, 1.0)


class TestChromeExport:
    def test_pid_is_rank_tid_is_stream(self):
        events = chrome_trace_events(sample_timeline())
        unit = next(e for e in events if e["name"] == "allreduce-unit")
        assert unit["pid"] == 0
        assert unit["tid"] == 3  # 1 + stream 2
        flow_span = next(e for e in events if e["name"] == "flow")
        assert flow_span["pid"] != 0  # synthetic network process
        assert flow_span["tid"] >= 64  # named lane

    def test_step_window_renders_on_activity_lane(self):
        events = chrome_trace_events(sample_timeline())
        step = next(e for e in events if e["name"] == "step 0")
        assert step["ph"] == "X"
        assert step["tid"] == 0
        assert step["dur"] == pytest.approx(1e6)

    def test_metadata_names_every_track(self):
        events = chrome_trace_events(sample_timeline())
        names = {(e["pid"], e["tid"]): e["args"]["name"]
                 for e in events if e["name"] == "thread_name"}
        assert names[(0, 0)] == "activity"
        assert names[(0, 3)] == "stream 2"
        process_names = {e["pid"]: e["args"]["name"] for e in events
                         if e["name"] == "process_name"}
        assert process_names[0] == "rank 0"
        assert "network" in process_names.values()

    def test_sorted_json_serializable_and_deterministic(self):
        first = chrome_trace_events(sample_timeline())
        second = chrome_trace_events(sample_timeline())
        assert json.dumps(first) == json.dumps(second)
        payload = [e for e in first if e["ph"] != "M"]
        assert payload == sorted(
            payload, key=lambda e: (e["ts"], e["pid"], e["tid"]))

    def test_flow_points_pair_up(self):
        timeline = sample_timeline()
        timeline.fault_event("inject", 0.2)
        timeline.fault_event("restore", 0.9)
        events = chrome_trace_events(timeline)
        starts = [e for e in events if e["ph"] == "s"]
        ends = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(ends) == 1
        assert starts[0]["id"] == ends[0]["id"]
        assert ends[0]["bp"] == "e"


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("units_total", "units launched").inc(3, rank=0)
        registry.gauge("depth").set(2.5)
        text = prometheus_text(registry)
        assert "# HELP units_total units launched" in text
        assert "# TYPE units_total counter" in text
        assert 'units_total{rank="0"} 3' in text
        assert "depth 2.5" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            histogram.observe(value)
        text = prometheus_text(registry)
        assert 'h_bucket{le="1"} 2' in text
        assert 'h_bucket{le="10"} 3' in text
        assert 'h_bucket{le="+Inf"} 4' in text
        assert "h_count 4" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(link='we"ird\n')
        text = prometheus_text(registry)
        assert r'link="we\"ird\n"' in text

    def test_every_line_parses(self):
        registry = MetricsRegistry()
        registry.counter("c", "help").inc(rank=0)
        registry.histogram("h").observe(0.5, rank=1)
        for line in prometheus_text(registry).strip().splitlines():
            if line.startswith("#"):
                assert line.split()[0] in ("#",) or \
                    line.startswith(("# HELP", "# TYPE"))
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # sample value must be numeric
            assert name_part[0].isalpha() or name_part[0] == "_"


class TestJsonl:
    def test_every_record_is_self_describing(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        timeline = sample_timeline()
        timeline.fault_event("inject", 0.1)
        kinds = set()
        for line in jsonl_lines(registry, timeline):
            record = json.loads(line)
            assert "kind" in record
            kinds.add(record["kind"])
        assert {"counter", "histogram", "step", "span", "instant",
                "flow"} <= kinds

    def test_record_counts_match_timeline(self):
        timeline = sample_timeline()
        records = list(jsonl_records(None, timeline))
        spans = [r for r in records if r["kind"] == "span"]
        assert len(spans) == len(timeline.spans)


class TestWriteArtifacts:
    def test_writes_all_three(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        written = write_artifacts(tmp_path / "out", registry,
                                  sample_timeline())
        assert set(written) == {"trace", "jsonl", "prometheus"}
        trace = json.loads(written["trace"].read_text())
        assert isinstance(trace, list) and trace
        assert written["prometheus"].read_text().endswith("\n")
        for line in written["jsonl"].read_text().strip().splitlines():
            json.loads(line)
