"""The committed diagnosis scenario suite.

One test per seeded pathology, each asserting the run yields *exactly*
the expected typed finding — plus the healthy shapes staying quiet and
the live/recorded diagnosis digest contract.  These are the scenarios
the ISSUE pins: clean, straggler rank, oversubscribed spine, injected
tuner mis-pick, crash/recovery.
"""

import pytest

from repro.core.runtime import AIACCConfig
from repro.models.synthetic import random_model_spec
from repro.obs import (
    Observability,
    Severity,
    diagnose,
    load_artifacts,
    write_diagnosis_artifacts,
)
from repro.obs.report import build_step_report

#: SHA-256 of the canonical empty findings list: the digest every
#: healthy run must produce.
EMPTY_FINDINGS_DIGEST = \
    "4f53cda18c2baa0c0354bb5f9a3ecbe5ed12ab4d8e11ba873c2f11161202b945"


def small_spec(seed=0):
    return random_model_spec(seed, num_layers=8, total_parameters=400_000,
                             total_forward_flops=1e9,
                             compute_occupancy=0.5)


def diagnosed_step_report(compute_skew=None, seed=0):
    obs = Observability(enabled=True)
    obs.attach_detectors()
    report = build_step_report(
        model=small_spec(seed), num_nodes=2, gpus_per_node=2,
        config=AIACCConfig(num_streams=4), seed=seed, obs=obs,
        compute_skew=compute_skew)
    return obs, diagnose(obs, attributions=report.attributions)


class TestCleanScenario:
    def test_clean_run_produces_zero_findings(self):
        _obs, report = diagnosed_step_report()
        assert report.findings == ()
        assert report.findings_digest == EMPTY_FINDINGS_DIGEST
        assert report.worst_severity is None

    def test_healthy_trainer_shape_is_quiet(self):
        from repro.training.trainer import run_training

        obs = Observability(enabled=True)
        obs.attach_detectors()
        run_training("resnet50", "aiacc", 8, measure_iterations=2,
                     warmup_iterations=1, obs=obs)
        assert diagnose(obs).findings == ()


class TestStragglerScenario:
    def test_skewed_rank_yields_exactly_one_straggler_finding(self):
        _obs, report = diagnosed_step_report(compute_skew={2: 3.0})
        assert [(f.kind, f.subject, f.component) for f in report.findings] \
            == [("straggler", "rank 2", "runtime")]
        # 3x compute is past the 2x escalation point.
        assert report.findings[0].severity is Severity.ERROR
        evidence = dict(report.findings[0].evidence)
        assert evidence["value"] > evidence["threshold"]

    def test_diagnosis_is_digest_stable(self):
        _obs, first = diagnosed_step_report(compute_skew={2: 3.0})
        _obs, second = diagnosed_step_report(compute_skew={2: 3.0})
        assert first.findings_digest == second.findings_digest
        assert first.findings_digest != EMPTY_FINDINGS_DIGEST


class TestCongestionScenario:
    def test_oversubscribed_spine_blames_only_the_core(self):
        from repro.training.trainer import run_training

        obs = Observability(enabled=True)
        obs.attach_detectors()
        run_training("resnet50", "aiacc", 16, gpus_per_node=4,
                     measure_iterations=2, warmup_iterations=1,
                     core_oversubscription=4.0, obs=obs)
        report = diagnose(obs)
        # The NICs are victims (throttled but not saturated) and the
        # NVLinks are healthy pipelining (hot but unthrottled): only the
        # shared 4:1 core is diagnosed.
        assert [(f.kind, f.subject, f.component) for f in report.findings] \
            == [("congestion", "link core", "network")]


class TestTunerScenario:
    def test_mis_pick_vs_warm_start_yields_tuner_regression(self):
        from repro.autotune import AutoTuner
        from repro.autotune.space import ParameterPoint

        obs = Observability(enabled=True)
        obs.attach_detectors()
        warm = ParameterPoint(num_streams=4, granularity_bytes=64e6,
                              algorithm="ring")

        def evaluate(point):
            # The cached setting is genuinely the best; every ensemble
            # proposal measures worse — a converged-on-worse run.
            return 0.10 if point == warm else 0.20

        AutoTuner(budget=12, initial_point=warm, seed=0,
                  obs=obs).tune(evaluate)
        report = diagnose(obs)
        assert [(f.kind, f.subject, f.component) for f in report.findings] \
            == [("tuner-regression", "tuner", "autotune")]
        assert report.findings[0].severity is Severity.WARN


class TestCrashRecoveryScenario:
    def test_crash_yields_exactly_one_recovery_finding(self):
        from repro.sim.faults import FaultPlan, NodeCrash
        from repro.training.resilience import run_fault_injected_training

        obs = Observability(enabled=True)
        obs.attach_detectors()
        run_fault_injected_training(
            "resnet50", FaultPlan([NodeCrash(at_s=0.4, node=1)]),
            num_gpus=8, gpus_per_node=4, total_iterations=4,
            checkpoint_interval=2, obs=obs)
        report = diagnose(obs)
        assert [(f.kind, f.component) for f in report.findings] == \
            [("crash-recovery", "resilience")]
        assert report.findings[0].severity is Severity.WARN
        # The recovery SLO measurement comes straight from the pairing.
        assert 0.0 < report.measurements["recovery_time_s"] < 60.0


class TestArtifactRoundTrip:
    def test_live_and_recorded_digests_are_bit_identical(self, tmp_path):
        obs, live = diagnosed_step_report(compute_skew={2: 3.0})
        obs.diag.publish(obs.registry)
        write_diagnosis_artifacts(tmp_path, live, obs=obs)

        replayed = diagnose(load_artifacts(tmp_path))
        assert replayed.findings_digest == live.findings_digest
        assert dict(replayed.measurements) == dict(live.measurements)

    def test_markdown_and_jsonl_cross_reference_the_digest(self, tmp_path):
        obs, report = diagnosed_step_report(compute_skew={2: 3.0})
        written = write_diagnosis_artifacts(tmp_path, report, obs=obs)
        assert report.findings_digest in \
            written["findings_md"].read_text()
        assert written["findings_jsonl"].read_text().count(
            '"record": "finding"') == len(report.findings)
        # The Perfetto trace carries one diagnosis instant per finding.
        assert written["trace"].read_text().count("finding.straggler") >= 1
