"""Tests for the AutoTuner loop, graph distance and the settings cache."""

import numpy as np
import pytest

from repro.autotune import (
    AutoTuner,
    ParameterPoint,
    SearchSpace,
    SettingsCache,
    deployment_distance,
    graph_edit_distance,
    model_graph,
    signature_distance,
)
from repro.errors import AutotuneError
from repro.models import get_model
from repro.sim import Simulator, alibaba_v100_cluster


def synthetic_cost(point: ParameterPoint) -> float:
    stream_term = abs(point.num_streams - 16) / 24
    gran_term = abs(np.log2(point.granularity_bytes / 8e6)) / 7
    algo_term = 0.0 if point.algorithm == "ring" else 0.15
    return 0.1 + stream_term + gran_term + algo_term


class TestAutoTuner:
    def test_finds_near_optimal_point(self):
        tuner = AutoTuner(budget=80, seed=0)
        result = tuner.tune(synthetic_cost)
        optimum = synthetic_cost(ParameterPoint(16, 8e6, "ring"))
        assert result.best_cost_s <= 1.5 * optimum
        assert result.best_point.num_streams in (12, 16, 20)

    def test_budget_respected(self):
        tuner = AutoTuner(budget=25, seed=0)
        result = tuner.tune(synthetic_cost)
        assert len(result.trials) == 25

    def test_all_techniques_get_some_budget(self):
        tuner = AutoTuner(budget=100, seed=0)
        result = tuner.tune(synthetic_cost)
        usage = result.technique_usage
        assert set(usage) >= {"grid", "pbt", "bayesian", "hyperband"}
        assert all(count >= 1 for count in usage.values())

    def test_global_best_tracked_correctly(self):
        tuner = AutoTuner(budget=50, seed=1)
        result = tuner.tune(synthetic_cost)
        assert result.best_cost_s == min(t.cost_s for t in result.trials)
        improvements = [t for t in result.trials if t.new_global_best]
        assert improvements[0] is result.trials[0]

    def test_initial_point_from_cache_evaluated_first(self):
        warm = ParameterPoint(16, 8e6, "ring")
        tuner = AutoTuner(budget=10, seed=0, initial_point=warm)
        result = tuner.tune(synthetic_cost)
        assert result.trials[0].technique == "cache"
        assert result.trials[0].point == warm
        # The warm start is the optimum here; nothing should beat it.
        assert result.best_point == warm

    def test_negative_cost_rejected(self):
        tuner = AutoTuner(budget=5, seed=0)
        with pytest.raises(AutotuneError):
            tuner.tune(lambda point: -1.0)

    def test_bad_budget_rejected(self):
        with pytest.raises(AutotuneError):
            AutoTuner(budget=0)


class TestGraphDistance:
    def topo(self, num_gpus):
        sim = Simulator()
        return alibaba_v100_cluster(sim, num_gpus).topology_graph()

    def test_identical_graphs_distance_zero(self):
        a = self.topo(16)
        b = self.topo(16)
        assert graph_edit_distance(a, b) == 0.0

    def test_more_nodes_more_distance(self):
        base = self.topo(16)
        near = self.topo(24)
        far = self.topo(64)
        assert graph_edit_distance(base, near) < \
            graph_edit_distance(base, far)

    def test_signature_distance_symmetric(self):
        a = self.topo(16)
        b = self.topo(32)
        assert signature_distance(a, b) == signature_distance(b, a)

    def test_model_graph_chain(self):
        spec = get_model("vgg16")
        graph = model_graph(spec)
        assert graph.number_of_nodes() == len(spec.layers)
        assert graph.number_of_edges() == len(spec.layers) - 1

    def test_same_deployment_distance_zero(self):
        spec = get_model("resnet50")
        topo = self.topo(16)
        assert deployment_distance(spec, topo, spec, topo) == 0.0

    def test_different_model_positive_distance(self):
        topo = self.topo(16)
        d = deployment_distance(get_model("resnet50"), topo,
                                get_model("vgg16"), topo)
        assert d > 0


class TestSettingsCache:
    def topo(self, num_gpus):
        sim = Simulator()
        return alibaba_v100_cluster(sim, num_gpus).topology_graph()

    def test_lookup_empty_returns_none(self):
        cache = SettingsCache()
        assert cache.lookup(get_model("resnet50"), self.topo(16)) is None

    def test_exact_match_found(self):
        cache = SettingsCache()
        spec = get_model("resnet50")
        topo = self.topo(16)
        point = ParameterPoint(16, 8e6, "ring")
        cache.store("rn50@16", spec, topo, point, 0.1)
        found = cache.lookup(spec, self.topo(16))
        assert found is not None
        entry, distance = found
        assert entry.best_point == point
        assert distance == 0.0

    def test_nearest_deployment_wins(self):
        cache = SettingsCache()
        spec = get_model("resnet50")
        cache.store("small", spec, self.topo(16),
                    ParameterPoint(4, 8e6, "ring"), 0.2)
        cache.store("large", spec, self.topo(256),
                    ParameterPoint(24, 8e6, "ring"), 0.1)
        found = cache.lookup(spec, self.topo(224))
        assert found is not None
        assert found[0].label == "large"

    def test_max_distance_rejects_far_matches(self):
        cache = SettingsCache()
        spec = get_model("resnet50")
        cache.store("tiny", spec, self.topo(8),
                    ParameterPoint(2, 1e6, "ring"), 0.5)
        assert cache.starting_point(get_model("bert-large"),
                                    self.topo(256),
                                    max_distance=1.0) is None

    def test_eviction_beyond_capacity(self):
        cache = SettingsCache(max_entries=2)
        spec = get_model("resnet50")
        for index, gpus in enumerate((8, 16, 24)):
            cache.store(f"e{index}", spec, self.topo(gpus),
                        ParameterPoint(4, 8e6, "ring"), 0.1)
        assert len(cache) == 2
