"""Auto-tuner over the planner-extended algorithm space.

The extended search space adds the planner-synthesized backends
(halving-doubling, multi-tree, in-network aggregation) to the paper's
ring/hierarchical grid.  On an oversubscribed leaf-spine core the tuner
must *find* that in-network aggregation wins — the acceptance test for
wiring the planner into the bandit — and an algorithm that cannot run on
the deployment's shape must be charged the infeasibility penalty rather
than crash the search.
"""

from repro.autotune import (
    AutoTuner,
    EXTENDED_ALGORITHMS,
    GridSearch,
    ParameterPoint,
    SearchSpace,
    make_evaluator,
)
from repro.autotune.tuner import INFEASIBLE_COST_S


def algorithm_only_space() -> SearchSpace:
    """Pin streams/granularity so the grid enumerates only algorithms."""
    return SearchSpace(streams=(16,), granularities_mb=(8,),
                       algorithms=EXTENDED_ALGORITHMS)


class TestExtendedSpace:
    def test_extended_space_contains_planner_backends(self):
        space = algorithm_only_space()
        assert set(space.algorithms) == {
            "ring", "hierarchical", "halving-doubling", "multi-tree", "ina"}
        assert len(space) == 5

    def test_tuner_selects_ina_on_oversubscribed_spine(self):
        space = algorithm_only_space()
        tuner = AutoTuner(space=space, techniques=[GridSearch(space)],
                          budget=len(space), seed=0)
        evaluate = make_evaluator("resnet50", 32,
                                  core_oversubscription=4.0)
        result = tuner.tune(evaluate)
        # Every algorithm was tried once; the spine is the bottleneck,
        # so in-network aggregation must come out on top.
        assert len(result.trials) == 5
        assert result.best_point.algorithm == "ina"

    def test_ina_does_not_win_on_healthy_fabric(self):
        space = algorithm_only_space()
        tuner = AutoTuner(space=space, techniques=[GridSearch(space)],
                          budget=len(space), seed=0)
        result = tuner.tune(make_evaluator("resnet50", 32))
        assert result.best_point.algorithm != "ina"
        assert result.best_cost_s < INFEASIBLE_COST_S

    def test_infeasible_shape_charged_penalty_not_crash(self):
        # 24 GPUs = 3 nodes: halving-doubling needs a power-of-two node
        # count, so its trial must cost the penalty, never win, and the
        # search must still complete.
        evaluate = make_evaluator("resnet50", 24,
                                  core_oversubscription=4.0)
        bad = ParameterPoint(16, 8e6, "halving-doubling")
        assert evaluate(bad) == INFEASIBLE_COST_S
        space = algorithm_only_space()
        tuner = AutoTuner(space=space, techniques=[GridSearch(space)],
                          budget=len(space), seed=0)
        result = tuner.tune(evaluate)
        assert result.best_point.algorithm != "halving-doubling"
        assert result.best_cost_s < INFEASIBLE_COST_S
