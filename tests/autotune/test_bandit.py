"""Tests for the sliding-window AUC multi-armed-bandit meta solver."""

import math

import pytest

from repro.autotune.bandit import AUCBandit
from repro.errors import AutotuneError


class TestAUC:
    def test_no_history_scores_zero_auc(self):
        bandit = AUCBandit(["a", "b"])
        assert bandit.auc("a") == 0.0

    def test_all_improvements_gives_full_area(self):
        bandit = AUCBandit(["a"])
        for _ in range(5):
            bandit.reward("a", True)
        assert bandit.auc("a") == pytest.approx(1.0)

    def test_no_improvements_gives_zero_area(self):
        bandit = AUCBandit(["a"])
        for _ in range(5):
            bandit.reward("a", False)
        assert bandit.auc("a") == 0.0

    def test_recent_improvements_worth_more_than_early(self):
        # Recency weighting: a technique whose wins are fresh must score
        # above one whose identical wins have nearly slid out of the
        # window — a technique that stopped improving decays.
        early = AUCBandit(["a"])
        for improved in (True, True, False, False, False, False):
            early.reward("a", improved)
        late = AUCBandit(["a"])
        for improved in (False, False, False, False, True, True):
            late.reward("a", improved)
        assert late.auc("a") > early.auc("a")

    def test_recency_weights_are_linear_in_position(self):
        # The i-th event (oldest first, k events total) contributes
        # (i + 1) / (k (k + 1) / 2) when it improved.
        oldest = AUCBandit(["a"])
        for improved in (True, False, False):
            oldest.reward("a", improved)
        assert oldest.auc("a") == pytest.approx(1.0 / 6.0)
        newest = AUCBandit(["a"])
        for improved in (False, False, True):
            newest.reward("a", improved)
        assert newest.auc("a") == pytest.approx(3.0 / 6.0)

    def test_window_slides(self):
        bandit = AUCBandit(["a"], window=3)
        bandit.reward("a", True)
        for _ in range(3):
            bandit.reward("a", False)
        # The improvement fell out of the window.
        assert bandit.auc("a") == 0.0


class TestSelection:
    def test_unused_technique_explored_first(self):
        bandit = AUCBandit(["a", "b"])
        bandit.reward("a", True)
        assert bandit.score("b") == math.inf
        assert bandit.select() == "b"

    def test_improving_technique_preferred(self):
        bandit = AUCBandit(["good", "bad"], window=10)
        for _ in range(5):
            bandit.reward("good", True)
            bandit.reward("bad", False)
        assert bandit.select() == "good"

    def test_exploration_term_decays_with_usage(self):
        bandit = AUCBandit(["a", "b"], window=20, exploration=0.2)
        for _ in range(8):
            bandit.reward("a", False)
        bandit.reward("b", False)
        # Both have zero AUC; the less-used technique scores higher.
        assert bandit.score("b") > bandit.score("a")

    def test_paper_formula_components(self):
        bandit = AUCBandit(["a", "b"], window=20, exploration=0.2)
        for _ in range(4):
            bandit.reward("a", True)
        for _ in range(4):
            bandit.reward("b", False)
        expected_a = bandit.auc("a") + 0.2 * math.sqrt(
            2 * math.log2(8) / 4)
        assert bandit.score("a") == pytest.approx(expected_a)


class TestValidation:
    def test_empty_techniques_rejected(self):
        with pytest.raises(AutotuneError):
            AUCBandit([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(AutotuneError):
            AUCBandit(["a", "a"])

    def test_unknown_reward_rejected(self):
        bandit = AUCBandit(["a"])
        with pytest.raises(AutotuneError):
            bandit.reward("zzz", True)

    def test_bad_window_rejected(self):
        with pytest.raises(AutotuneError):
            AUCBandit(["a"], window=0)
