"""Tests for the search space and the four search techniques."""

import numpy as np
import pytest

from repro.autotune import (
    BayesianOptimization,
    GridSearch,
    Hyperband,
    ParameterPoint,
    PopulationBasedTraining,
    SearchSpace,
    default_ensemble,
)
from repro.errors import AutotuneError


def synthetic_cost(point: ParameterPoint) -> float:
    """A smooth cost with a known optimum: 16 streams, 8 MB, ring."""
    stream_term = abs(point.num_streams - 16) / 24
    gran_term = abs(np.log2(point.granularity_bytes / 8e6)) / 7
    algo_term = 0.0 if point.algorithm == "ring" else 0.15
    return 0.1 + stream_term + gran_term + algo_term


class TestSearchSpace:
    def test_size(self):
        space = SearchSpace(streams=(2, 4), granularities_mb=(1, 2),
                            algorithms=("ring",))
        assert len(space) == 4
        assert len(space.all_points()) == 4

    def test_contains(self):
        space = SearchSpace()
        assert ParameterPoint(8, 16e6, "ring") in space
        assert ParameterPoint(3, 16e6, "ring") not in space

    def test_random_point_in_space(self):
        space = SearchSpace()
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert space.random_point(rng) in space

    def test_neighbors_one_step_away(self):
        space = SearchSpace()
        point = ParameterPoint(8, 16e6, "ring")
        neighbors = space.neighbors(point)
        assert ParameterPoint(4, 16e6, "ring") in neighbors
        assert ParameterPoint(12, 16e6, "ring") in neighbors
        assert ParameterPoint(8, 8e6, "ring") in neighbors
        assert ParameterPoint(8, 32e6, "ring") in neighbors
        assert ParameterPoint(8, 16e6, "hierarchical") in neighbors

    def test_neighbors_at_boundary(self):
        space = SearchSpace()
        point = ParameterPoint(2, 1e6, "ring")
        neighbors = space.neighbors(point)
        assert all(n in space for n in neighbors)

    def test_neighbors_outside_space_rejected(self):
        space = SearchSpace()
        with pytest.raises(AutotuneError):
            space.neighbors(ParameterPoint(3, 16e6, "ring"))

    def test_encode_normalised(self):
        space = SearchSpace()
        for point in space.all_points():
            vec = point.encode(space)
            assert vec.shape == (3,)
            assert np.all(vec >= 0) and np.all(vec <= 1)

    def test_empty_dimension_rejected(self):
        with pytest.raises(AutotuneError):
            SearchSpace(streams=())


def run_technique(technique, budget=60):
    best = float("inf")
    best_point = None
    for _ in range(budget):
        point = technique.propose()
        cost = synthetic_cost(point)
        technique.observe(point, cost)
        if cost < best:
            best, best_point = cost, point
    return best, best_point


class TestTechniques:
    @pytest.mark.parametrize("factory", [
        lambda s: GridSearch(s),
        lambda s: PopulationBasedTraining(s, seed=1),
        lambda s: BayesianOptimization(s, seed=1),
        lambda s: Hyperband(s, seed=2),
    ])
    def test_finds_good_region(self, factory):
        space = SearchSpace()
        technique = factory(space)
        best, best_point = run_technique(technique)
        # All techniques should land in the good region of this smooth
        # landscape within 60 evaluations (optimum cost is 0.1; random
        # points average ~0.5).
        assert best < 2.5 * synthetic_cost(ParameterPoint(16, 8e6, "ring"))
        assert best_point in space

    def test_grid_visits_distinct_points_first(self):
        space = SearchSpace()
        grid = GridSearch(space)
        seen = [grid.propose() for _ in range(30)]
        assert len(set(seen)) == 30

    def test_grid_covers_whole_space_eventually(self):
        space = SearchSpace(streams=(2, 4), granularities_mb=(1, 2),
                            algorithms=("ring",))
        grid = GridSearch(space)
        seen = {grid.propose() for _ in range(len(space))}
        assert seen == set(space.all_points())

    def test_pbt_population_evolves_toward_winners(self):
        space = SearchSpace()
        pbt = PopulationBasedTraining(space, population_size=4, seed=3)
        for _ in range(40):
            point = pbt.propose()
            pbt.observe(point, synthetic_cost(point))
        costs = [synthetic_cost(p) for p in pbt.population]
        # Generations should have pulled the population into decent areas.
        assert np.mean(costs) < 0.8

    def test_bayesian_proposals_stay_in_space(self):
        space = SearchSpace()
        bo = BayesianOptimization(space, seed=5)
        for _ in range(20):
            point = bo.propose()
            assert point in space
            bo.observe(point, synthetic_cost(point))

    def test_hyperband_rungs_shrink(self):
        space = SearchSpace()
        hb = Hyperband(space, bracket_size=8, eta=2, seed=7)
        first_rung = set(hb._rung)
        for _ in range(8):
            point = hb.propose()
            hb.observe(point, synthetic_cost(point))
        assert len(set(hb._rung)) <= max(1, len(first_rung) // 2)

    def test_default_ensemble_has_paper_techniques(self):
        names = {t.name for t in default_ensemble(SearchSpace())}
        assert names == {"grid", "pbt", "bayesian", "hyperband"}
