"""Tests for settings-cache persistence and elastic timed scaling."""

import json

import pytest

from repro.autotune import ParameterPoint, SettingsCache
from repro.errors import AutotuneError, TrainingError
from repro.models import get_model
from repro.sim import Simulator, alibaba_v100_cluster
from repro.training.resilience import simulate_elastic_scaling


def topo(num_gpus):
    return alibaba_v100_cluster(Simulator(), num_gpus).topology_graph()


class TestCachePersistence:
    def test_save_load_roundtrip(self, tmp_path):
        cache = SettingsCache()
        point = ParameterPoint(12, 16e6, "ring")
        cache.store("rn50@32", get_model("resnet50"), topo(32), point, 0.2)
        path = tmp_path / "cache.json"
        cache.save(path)

        restored = SettingsCache.load(path)
        assert len(restored) == 1
        found = restored.lookup(get_model("resnet50"), topo(32))
        assert found is not None
        entry, distance = found
        assert entry.best_point == point
        assert entry.best_cost_s == 0.2
        # Same deployment -> distance zero even through the fingerprint.
        assert distance == 0.0

    def test_restored_cache_distinguishes_models(self, tmp_path):
        cache = SettingsCache()
        cache.store("rn", get_model("resnet50"), topo(32),
                    ParameterPoint(8, 8e6, "ring"), 0.2)
        cache.store("vgg", get_model("vgg16"), topo(32),
                    ParameterPoint(16, 16e6, "ring"), 0.7)
        path = tmp_path / "cache.json"
        cache.save(path)
        restored = SettingsCache.load(path)
        found = restored.lookup(get_model("vgg16"), topo(32))
        assert found is not None
        assert found[0].label == "vgg"

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(AutotuneError):
            SettingsCache.load(tmp_path / "nope.json")

    def test_load_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(AutotuneError):
            SettingsCache.load(path)

    def test_empty_cache_roundtrip(self, tmp_path):
        path = tmp_path / "empty.json"
        SettingsCache().save(path)
        assert len(SettingsCache.load(path)) == 0

    def test_corrupt_entry_is_quarantined_not_fatal(self, tmp_path):
        # One corrupt entry must cost one warm start, not the whole
        # cache: the good entries still load, the bad one is recorded.
        cache = SettingsCache()
        cache.store("rn50@32", get_model("resnet50"), topo(32),
                    ParameterPoint(12, 16e6, "ring"), 0.2)
        path = tmp_path / "cache.json"
        cache.save(path)
        payload = json.loads(path.read_text())
        payload.append({"label": "broken", "model": {"oops": True}})
        path.write_text(json.dumps(payload))

        restored = SettingsCache.load(path)
        assert len(restored) == 1
        assert restored.lookup(get_model("resnet50"), topo(32)) is not None
        assert len(restored.quarantined) == 1
        entry, reason = restored.quarantined[0]
        assert entry["label"] == "broken"
        assert reason

    def test_corrupt_entry_is_logged(self, tmp_path, caplog):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps([{"label": "broken"}]))
        with caplog.at_level("WARNING", logger="repro.autotune.cache"):
            restored = SettingsCache.load(path)
        assert len(restored) == 0
        assert len(restored.quarantined) == 1
        assert any("quarantined corrupt entry" in record.message
                   for record in caplog.records)

    def test_non_list_payload_still_raises(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(AutotuneError):
            SettingsCache.load(path)


class TestElasticScaling:
    def test_phases_measured_and_paused(self):
        phases, total = simulate_elastic_scaling(
            "resnet50", "aiacc", [(16, 5), (32, 5)])
        assert len(phases) == 2
        assert phases[0].num_gpus == 16
        assert phases[1].num_gpus == 32
        pure = sum(p.iterations * p.iteration_time_s for p in phases)
        # Total includes the grow pause + parameter broadcast.
        assert total > pure

    def test_shrink_has_no_broadcast(self):
        _, grow_total = simulate_elastic_scaling(
            "resnet50", "aiacc", [(16, 3), (32, 3)])
        _, shrink_total = simulate_elastic_scaling(
            "resnet50", "aiacc", [(32, 3), (16, 3)])
        # Same phases mirrored; growing pays the extra broadcast.
        assert grow_total > shrink_total

    def test_single_phase_no_pause(self):
        phases, total = simulate_elastic_scaling(
            "resnet50", "aiacc", [(16, 4)])
        assert total == pytest.approx(
            phases[0].iterations * phases[0].iteration_time_s)

    def test_samples_accounting(self):
        phases, _ = simulate_elastic_scaling(
            "resnet50", "aiacc", [(16, 5)], batch_per_gpu=32)
        assert phases[0].samples == 5 * 16 * 32

    def test_validation(self):
        with pytest.raises(TrainingError):
            simulate_elastic_scaling("resnet50", "aiacc", [])
        with pytest.raises(TrainingError):
            simulate_elastic_scaling("resnet50", "aiacc", [(0, 5)])
