"""Tests for the baseline communication backends."""

import pytest

from repro.errors import ReproError
from repro.frameworks import (
    BytePSBackend,
    HorovodBackend,
    MXNetKVStoreBackend,
    PyTorchDDPBackend,
    available_backends,
    make_backend,
)
from repro.frameworks.base import ReadyGradient, TrainContext
from repro.collectives.timed import TimedCollectives
from repro.models import ParameterSpec, get_model
from repro.sim import FluidNetwork, Simulator, Trace, alibaba_v100_cluster
from repro.training.trainer import run_training


def make_ctx(model="resnet50", num_gpus=16, batch=32):
    sim = Simulator()
    net = FluidNetwork(sim)
    cluster = alibaba_v100_cluster(sim, num_gpus)
    return TrainContext(
        sim=sim, network=net, cluster=cluster,
        collectives=TimedCollectives(sim, net, cluster),
        model=get_model(model), batch_per_gpu=batch,
        trace=Trace(enabled=False),
    )


def ready(name, elements, grad_id, at=0.0):
    return ReadyGradient(ParameterSpec(name, elements), grad_id, at)


class TestRegistry:
    def test_available_backends(self):
        assert set(available_backends()) == {
            "aiacc", "horovod", "pytorch-ddp", "byteps", "mxnet-kvstore"}

    def test_make_backend_unknown_rejected(self):
        with pytest.raises(ReproError):
            make_backend("gloo")

    def test_make_backend_with_options(self):
        backend = make_backend("horovod", cycle_time_s=1e-3)
        assert backend.cycle_time_s == 1e-3

    def test_make_aiacc_with_kwargs(self):
        backend = make_backend("aiacc", num_streams=4)
        assert backend.config.num_streams == 4


class TestHorovod:
    def test_negotiation_cost_scales_with_workers(self):
        backend = HorovodBackend()
        small = make_ctx(num_gpus=16)
        large = make_ctx(num_gpus=256)
        assert backend.negotiation_delay_s(large, 100) > \
            4 * backend.negotiation_delay_s(small, 100)

    def test_negotiation_cost_scales_with_tensors(self):
        # The CTR failure mode: thousands of tensor entries serialize at
        # the master (paper §VIII-C).
        backend = HorovodBackend()
        ctx = make_ctx(num_gpus=128)
        assert backend.negotiation_delay_s(ctx, 8000) > \
            10 * backend.negotiation_delay_s(ctx, 100)

    def test_fusion_packs_up_to_buffer_size(self):
        backend = HorovodBackend(fusion_buffer_bytes=100)
        ctx = make_ctx()
        grads = [ready(f"g{i}", 10, i) for i in range(6)]  # 40 bytes each
        buffers = backend.pack_fusion_buffers(ctx, grads)
        assert buffers == [80, 80, 80]

    def test_oversized_tensor_not_split(self):
        # Unlike AIACC, Horovod sends a huge tensor whole.
        backend = HorovodBackend(fusion_buffer_bytes=100)
        ctx = make_ctx()
        buffers = backend.pack_fusion_buffers(
            ctx, [ready("huge", 1000, 0)])
        assert buffers == [4000]

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            HorovodBackend(cycle_time_s=0)

    def test_end_to_end_iteration(self):
        result = run_training("resnet50", HorovodBackend(), 16,
                              measure_iterations=2, warmup_iterations=1)
        assert result.throughput > 0
        assert result.scaling_efficiency < 1.0


class TestPyTorchDDP:
    def test_buckets_reverse_registration_order(self):
        backend = PyTorchDDPBackend(bucket_bytes=25e6)
        ctx = make_ctx("resnet50")
        buckets = backend.build_buckets(ctx)
        # First bucket holds the LAST parameters (output layer first).
        params = ctx.model.parameters()
        assert buckets[0][0] == params[-1].name
        assert sum(len(b) for b in buckets) == len(params)

    def test_bucket_sizes_near_cap(self):
        backend = PyTorchDDPBackend(bucket_bytes=25e6)
        ctx = make_ctx("vgg16")
        buckets = backend.build_buckets(ctx)
        sizes = backend._bucket_sizes(ctx, buckets)
        # No bucket except oversized single tensors goes far beyond cap.
        for names, size in zip(buckets, sizes):
            if len(names) > 1:
                assert size <= 25e6 * 1.01

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            PyTorchDDPBackend(bucket_bytes=-1)
        with pytest.raises(ValueError):
            PyTorchDDPBackend(stream_cap_scale=0)

    def test_end_to_end_iteration(self):
        result = run_training("resnet50", PyTorchDDPBackend(), 16,
                              measure_iterations=2, warmup_iterations=1)
        assert result.throughput > 0


class TestBytePS:
    def test_nic_volume_blowup_without_cpu_servers(self):
        # Co-located servers: the NIC carries the node's worker pushes
        # (g x S x remote share) PLUS the local server's traffic for all
        # remote workers ((n-g) x S / m).
        backend = BytePSBackend()
        ctx = make_ctx(num_gpus=16)  # 2 nodes x 8 GPUs
        per_nic = backend.nic_bytes_per_gradient(ctx, 1e6)
        expected = 8 * 1e6 * 0.5 + 8 * 1e6 / 2
        assert per_nic == pytest.approx(expected)

    def test_extra_cpu_servers_offload_worker_nic(self):
        # Dedicated CPU servers absorb the server-side traffic, so the
        # worker NIC carries less — the paper's "extra financial cost"
        # fix.
        with_extra = BytePSBackend(extra_cpu_server_nodes=6)
        without = BytePSBackend()
        ctx = make_ctx(num_gpus=32)  # 4 nodes: 12S co-located vs 8S
        assert with_extra.nic_bytes_per_gradient(ctx, 1e6) < \
            without.nic_bytes_per_gradient(ctx, 1e6)

    def test_enough_cpu_servers_improve_throughput(self):
        starved = run_training("vgg16", BytePSBackend(), 32,
                               measure_iterations=2, warmup_iterations=1)
        provisioned = run_training(
            "vgg16", BytePSBackend(extra_cpu_server_nodes=8), 32,
            measure_iterations=2, warmup_iterations=1)
        assert provisioned.throughput > starved.throughput

    def test_too_few_dedicated_servers_bottleneck(self):
        backend = BytePSBackend(extra_cpu_server_nodes=1)
        ctx = make_ctx(num_gpus=64)
        # One server NIC must absorb every worker's shard: n x S.
        assert backend.server_nic_bytes_per_gradient(ctx, 1e6) == \
            pytest.approx(64e6)

    def test_single_node_stays_on_nvlink(self):
        backend = BytePSBackend()
        ctx = make_ctx(num_gpus=8)
        assert backend.nic_bytes_per_gradient(ctx, 1e6) == 0.0

    def test_partitioning(self):
        backend = BytePSBackend(partition_bytes=4e6)
        assert backend._partition(10e6) == [4e6, 4e6, 2e6]
        assert backend._partition(1e6) == [1e6]

    def test_slower_than_allreduce_at_scale(self):
        byteps = run_training("vgg16", BytePSBackend(), 32,
                              measure_iterations=2, warmup_iterations=1)
        horovod = run_training("vgg16", HorovodBackend(), 32,
                               measure_iterations=2, warmup_iterations=1)
        assert byteps.throughput < horovod.throughput


class TestMXNetKVStore:
    def test_slower_than_provisioned_byteps(self):
        # Whole-key serial push/pull loses to BytePS's partitioned
        # pipelining once BytePS has its recommended CPU servers (the
        # co-located configurations carry different PS volume models, so
        # the clean comparison is against a provisioned BytePS).
        kvstore = run_training("resnet50", MXNetKVStoreBackend(), 32,
                               measure_iterations=2, warmup_iterations=1)
        byteps = run_training(
            "resnet50", BytePSBackend(extra_cpu_server_nodes=8), 32,
            measure_iterations=2, warmup_iterations=1)
        assert kvstore.throughput < byteps.throughput

    def test_end_to_end_single_node(self):
        result = run_training("resnet50", MXNetKVStoreBackend(), 8,
                              measure_iterations=2, warmup_iterations=1)
        assert result.scaling_efficiency > 0.8


class TestCrossBackendOrdering:
    """The headline comparison: AIACC wins on every multi-node setting."""

    @pytest.mark.parametrize("model", ["vgg16", "resnet50", "bert-large"])
    def test_aiacc_fastest_at_32_gpus(self, model):
        results = {
            name: run_training(model, name, 32, measure_iterations=2,
                               warmup_iterations=1).throughput
            for name in ("aiacc", "horovod", "pytorch-ddp", "byteps")
        }
        assert max(results, key=results.get) == "aiacc"

    def test_all_backends_equal_on_single_gpu_compute_bound(self):
        # On one node with NVLink, communication is nearly free: backends
        # should agree within a few percent.
        results = [
            run_training("resnet50", name, 8, measure_iterations=2,
                         warmup_iterations=1).throughput
            for name in ("aiacc", "horovod", "pytorch-ddp")
        ]
        assert max(results) / min(results) < 1.1
