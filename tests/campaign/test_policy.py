"""Retry/quarantine policy (`repro.campaign.policy`)."""

import pytest

from repro.campaign.policy import FAIL, QUARANTINE, RETRY, RetryPolicy
from repro.errors import CampaignError


class TestBackoff:
    def test_exponential_growth(self):
        policy = RetryPolicy(base_backoff_s=0.5, multiplier=2.0,
                             max_backoff_s=30.0)
        assert policy.backoff_s(1) == 0.5
        assert policy.backoff_s(2) == 1.0
        assert policy.backoff_s(3) == 2.0

    def test_cap(self):
        policy = RetryPolicy(base_backoff_s=1.0, multiplier=10.0,
                             max_backoff_s=5.0)
        assert policy.backoff_s(4) == 5.0


class TestDecide:
    def test_first_failure_retries_with_backoff(self):
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.5)
        decision = policy.decide(1, "TransientWorkerError", None)
        assert decision.action == RETRY
        assert decision.delay_s == 0.5

    def test_repeated_error_class_quarantines(self):
        # Same class twice in a row on the same spec: deterministic
        # failure, retrying would burn the budget for nothing.
        decision = RetryPolicy().decide(2, "InjectedFailure",
                                        "InjectedFailure")
        assert decision.action == QUARANTINE
        assert "repeated" in decision.reason

    def test_changed_error_class_keeps_retrying(self):
        decision = RetryPolicy(max_attempts=4).decide(
            2, "InjectedFailure", "TransientWorkerError")
        assert decision.action == RETRY

    def test_attempt_budget_exhausted_fails(self):
        decision = RetryPolicy(max_attempts=3).decide(
            3, "InjectedFailure", "TransientWorkerError")
        assert decision.action == FAIL
        assert "attempt" in decision.reason

    def test_quarantine_heuristic_can_be_disabled(self):
        policy = RetryPolicy(max_attempts=5,
                             quarantine_repeated_class=False)
        decision = policy.decide(2, "InjectedFailure", "InjectedFailure")
        assert decision.action == RETRY


class TestPayload:
    def test_round_trip(self):
        policy = RetryPolicy(max_attempts=7, base_backoff_s=0.25,
                             multiplier=3.0, max_backoff_s=9.0,
                             quarantine_repeated_class=False)
        assert RetryPolicy.from_payload(policy.to_payload()) == policy

    def test_validation(self):
        with pytest.raises(CampaignError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(CampaignError):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(CampaignError):
            RetryPolicy(multiplier=0.5)
