"""CLI surface of the campaign service (`python -m repro campaign`)."""

import json

from repro.cli import main


def submit(tmp_path, capsys, grid="smoke"):
    store = tmp_path / "campaigns.db"
    assert main(["campaign", "submit", "--store", str(store),
                 "--grid", grid]) == 0
    out = capsys.readouterr().out
    assert "runs pending" in out
    campaign_id = int(out.split("campaign ")[1].split(":")[0])
    return store, campaign_id


class TestSubmitAndStatus:
    def test_submit_then_status(self, tmp_path, capsys):
        store, campaign_id = submit(tmp_path, capsys)
        assert main(["campaign", "status", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert f"campaign {campaign_id} (smoke)" in out
        assert "pending=4" in out

    def test_resubmit_same_grid_is_a_new_campaign_same_cells(
            self, tmp_path, capsys):
        store, first = submit(tmp_path, capsys)
        _, second = submit(tmp_path, capsys)
        assert second == first + 1

    def test_grid_from_json_file(self, tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps([
            {"runner": "sleep", "axes": {"cell": [0, 1]},
             "base": {"duration_s": 0.01}}]))
        store, _ = submit(tmp_path, capsys, grid=str(grid_file))
        assert main(["campaign", "status", "--store", str(store)]) == 0
        assert "pending=2" in capsys.readouterr().out

    def test_unknown_grid_errors(self, tmp_path, capsys):
        assert main(["campaign", "submit",
                     "--store", str(tmp_path / "c.db"),
                     "--grid", "nope"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_status_missing_store_errors(self, tmp_path, capsys):
        assert main(["campaign", "status",
                     "--store", str(tmp_path / "nope.db")]) == 1
        assert "error:" in capsys.readouterr().err


class TestRunResumeReport:
    def grid_file(self, tmp_path, cells=3):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps([
            {"runner": "sleep", "axes": {"cell": list(range(cells))},
             "base": {"duration_s": 0.01}}]))
        return str(path)

    def test_run_grid_to_completion(self, tmp_path, capsys):
        store = tmp_path / "c.db"
        assert main(["campaign", "run", "--store", str(store),
                     "--grid", self.grid_file(tmp_path),
                     "--workers", "2", "--lease", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "done=3" in out
        assert "report digest:" in out

    def test_run_needs_exactly_one_of_id_or_grid(self, tmp_path, capsys):
        store = str(tmp_path / "c.db")
        assert main(["campaign", "run", "--store", store]) == 1
        assert main(["campaign", "run", "--store", store, "--id", "1",
                     "--grid", "smoke"]) == 1
        err = capsys.readouterr().err
        assert "exactly one of --id or --grid" in err

    def test_resume_completed_campaign_is_a_no_op(self, tmp_path, capsys):
        store = str(tmp_path / "c.db")
        assert main(["campaign", "run", "--store", store,
                     "--grid", self.grid_file(tmp_path)]) == 0
        first = capsys.readouterr().out
        digest = first.split("report digest: ")[1].strip()
        assert main(["campaign", "resume", "1", "--store", store]) == 0
        second = capsys.readouterr().out
        assert f"report digest: {digest}" in second

    def test_report_command_writes_artifacts(self, tmp_path, capsys):
        store = str(tmp_path / "c.db")
        assert main(["campaign", "run", "--store", store,
                     "--grid", self.grid_file(tmp_path)]) == 0
        capsys.readouterr()
        out_dir = tmp_path / "report"
        assert main(["campaign", "report", "--store", store,
                     "--out", str(out_dir)]) == 0
        rendered = capsys.readouterr().out
        assert "digest" in rendered
        assert (out_dir / "summary.md").exists()
        assert (out_dir / "runs.jsonl").exists()
        assert (out_dir / "metrics.prom").exists()
        metrics = (out_dir / "metrics.prom").read_text()
        assert 'repro_campaign_runs_total{state="done"} 3' in metrics

    def test_report_from_campaign_via_report_command(self, tmp_path,
                                                     capsys):
        store = str(tmp_path / "c.db")
        assert main(["campaign", "run", "--store", store,
                     "--grid", self.grid_file(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["report", "--from-campaign", store]) == 0
        assert "digest" in capsys.readouterr().out

    def test_report_missing_store_is_typed_error(self, tmp_path, capsys):
        assert main(["report", "--from-campaign",
                     str(tmp_path / "nope.db")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_report_corrupt_store_is_typed_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.db"
        bad.write_text("not a sqlite database by any stretch..........")
        assert main(["campaign", "report", "--store", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err
