"""Campaign diff tests: `diff_reports` and `python -m repro campaign diff`.

The contract: two stores diff clean if and only if their report digests
match, and the CLI exits non-zero on divergence (ISSUE 10 satellite).
"""

import json

from repro.campaign.report import CampaignReport, CellDiff, diff_reports
from repro.campaign.store import RunRow
from repro.cli import main


def make_row(spec_id, state="done", result=None, error_class=None,
             attempt=1, wall=0.5):
    return RunRow(campaign_id=1, spec_id=spec_id, runner="sleep",
                  params={"cell": spec_id}, state=state, attempt=attempt,
                  not_before=0.0, claim_token=None, claimed_by=None,
                  heartbeat_at=None, lease_expires_at=None,
                  wall_time_s=wall, error_class=error_class,
                  error=None, traceback=None, result=result)


def make_report(rows):
    counts = {state: 0 for state in
              ("pending", "claimed", "running", "done", "failed",
               "quarantined")}
    for row in rows:
        counts[row.state] += 1
    return CampaignReport(campaign_id=1, name="t", counts=counts,
                          rows=tuple(rows))


class TestDiffReports:
    def test_identical_reports_diff_clean(self):
        rows = [make_row("a", result={"x": 1}),
                make_row("b", state="failed", error_class="TrainingError")]
        a, b = make_report(rows), make_report(rows)
        assert diff_reports(a, b) == []
        assert a.digest() == b.digest()

    def test_excluded_fields_do_not_diverge(self):
        # Attempts and wall time are excluded from the digest; the diff
        # must agree with the digest on what counts as divergence.
        a = make_report([make_row("a", result={"x": 1}, attempt=1,
                                  wall=0.1)])
        b = make_report([make_row("a", result={"x": 1}, attempt=7,
                                  wall=9.9)])
        assert diff_reports(a, b) == []
        assert a.digest() == b.digest()

    def test_state_and_result_divergence_reported(self):
        a = make_report([make_row("a", result={"x": 1}),
                         make_row("b", result={"y": 2})])
        b = make_report([make_row("a", result={"x": 1}),
                         make_row("b", state="failed",
                                  error_class="TrainingError")])
        diffs = diff_reports(a, b)
        assert diffs == [CellDiff("b", "state", "done", "failed")]
        assert a.digest() != b.digest()

    def test_result_payload_divergence(self):
        a = make_report([make_row("a", result={"x": 1})])
        b = make_report([make_row("a", result={"x": 2})])
        (diff,) = diff_reports(a, b)
        assert (diff.spec_id, diff.field) == ("a", "result")
        assert "result differs" in diff.render()

    def test_missing_cells_reported_both_directions(self):
        a = make_report([make_row("a"), make_row("b")])
        b = make_report([make_row("b"), make_row("c")])
        diffs = diff_reports(a, b)
        assert [(d.spec_id, d.field) for d in diffs] == \
            [("a", "missing"), ("c", "missing")]
        assert diffs[0].b is None and diffs[1].a is None

    def test_diff_clean_iff_digests_match(self):
        base = [make_row("a", result={"x": 1}),
                make_row("b", state="quarantined",
                         error_class="CampaignStoreError")]
        variants = [
            base,
            [base[0], make_row("b", state="quarantined",
                               error_class="TimeoutError")],
            [base[0]],
        ]
        for rows in variants:
            a, b = make_report(base), make_report(rows)
            assert (diff_reports(a, b) == []) == (a.digest() == b.digest())


class TestCampaignDiffCli:
    def grid_file(self, tmp_path, cells=3, duration=0.01):
        path = tmp_path / f"grid{cells}.json"
        path.write_text(json.dumps([
            {"runner": "sleep", "axes": {"cell": list(range(cells))},
             "base": {"duration_s": duration}}]))
        return str(path)

    def run_store(self, tmp_path, name, cells=3):
        store = tmp_path / name
        assert main(["campaign", "run", "--store", str(store),
                     "--grid", self.grid_file(tmp_path, cells),
                     "--workers", "2", "--lease", "2.0"]) == 0
        return str(store)

    def test_identical_stores_exit_zero(self, tmp_path, capsys):
        a = self.run_store(tmp_path, "a.db")
        b = self.run_store(tmp_path, "b.db")
        assert main(["campaign", "diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "identical" in out

    def test_divergent_stores_exit_nonzero(self, tmp_path, capsys):
        a = self.run_store(tmp_path, "a.db", cells=3)
        b = self.run_store(tmp_path, "b.db", cells=4)
        assert main(["campaign", "diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "missing" in out

    def test_missing_store_is_typed_error(self, tmp_path, capsys):
        a = self.run_store(tmp_path, "a.db")
        assert main(["campaign", "diff", a,
                     str(tmp_path / "nope.db")]) == 1
