"""End-to-end campaign runs under crashes (`repro.campaign.runner`).

The contract under test is ISSUE 6's kill-and-resume invariant: kill a
worker (SIGKILL mid-run) or the orchestrator (``kill -9``) at an
arbitrary point, resume, and the campaign completes with every cell
recorded exactly once and a final report digest identical to an
uninterrupted run.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign.grid import CampaignGrid
from repro.campaign.policy import RetryPolicy
from repro.campaign.report import load_report
from repro.campaign.runner import CampaignRunner, submit_campaign
from repro.campaign.store import CampaignStore
from repro.errors import CampaignError

FAST = RetryPolicy(max_attempts=3, base_backoff_s=0.05, multiplier=2.0,
                   max_backoff_s=0.2)


def run_grids(store_path, grids, name="test", **kwargs):
    with CampaignStore(store_path) as store:
        campaign_id = submit_campaign(store, grids, name=name)
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("lease_s", 1.0)
    kwargs.setdefault("poll_s", 0.05)
    kwargs.setdefault("policy", FAST)
    runner = CampaignRunner(store_path, campaign_id, **kwargs)
    counts = runner.run(max_wall_s=90.0)
    return campaign_id, counts


def report_of(store_path, campaign_id):
    with CampaignStore(store_path) as store:
        return load_report(store, campaign_id)


def sleep_grid(cells, duration_s=0.05):
    return CampaignGrid(runner="sleep", axes={"cell": tuple(range(cells))},
                        base={"duration_s": duration_s})


class TestHappyPath:
    def test_campaign_completes_and_digest_is_reproducible(self, tmp_path):
        grids = [sleep_grid(4)]
        _, counts = run_grids(tmp_path / "a.db", grids)
        assert counts["done"] == 4
        assert counts["failed"] == counts["quarantined"] == 0
        first = report_of(tmp_path / "a.db", 1)
        cid, _ = run_grids(tmp_path / "b.db", grids)
        second = report_of(tmp_path / "b.db", cid)
        assert first.complete and second.complete
        assert first.digest() == second.digest()

    def test_rerun_of_finished_campaign_is_a_no_op(self, tmp_path):
        path = tmp_path / "c.db"
        campaign_id, _ = run_grids(path, [sleep_grid(2)])
        before = report_of(path, campaign_id)
        runner = CampaignRunner(path, campaign_id, policy=FAST)
        counts = runner.run(max_wall_s=30.0)
        assert counts["done"] == 2
        after = report_of(path, campaign_id)
        assert after.digest() == before.digest()
        # Exactly-once: no cell was re-attempted.
        assert [r.attempt for r in after.rows] == \
            [r.attempt for r in before.rows]


class TestWorkerCrash:
    def test_sigkilled_worker_is_reclaimed_and_cell_completes(
            self, tmp_path):
        # kamikaze SIGKILLs its own worker process on attempt 1: the
        # pool breaks, the lease expires, the cell is re-queued, and the
        # second attempt completes.
        grids = [CampaignGrid(runner="kamikaze", axes={"cell": (0,)},
                              base={"die_attempts": 1}),
                 sleep_grid(3)]
        campaign_id, counts = run_grids(tmp_path / "k.db", grids)
        assert counts["done"] == 4
        report = report_of(tmp_path / "k.db", campaign_id)
        kamikaze = [r for r in report.rows if r.runner == "kamikaze"][0]
        assert kamikaze.state == "done"
        assert kamikaze.attempt == 2
        assert kamikaze.result == {"cell": 0, "survived_attempt": True}

    def test_retry_quarantine_and_budget_paths(self, tmp_path):
        grids = [
            CampaignGrid(runner="flaky", axes={"cell": (0,)},
                         base={"succeed_at": 2}),
            CampaignGrid(runner="broken", axes={"cell": (1,)}),
            CampaignGrid(runner="alternating", axes={"cell": (2,)}),
        ]
        campaign_id, counts = run_grids(tmp_path / "f.db", grids)
        assert counts == {"pending": 0, "claimed": 0, "running": 0,
                          "done": 1, "failed": 1, "quarantined": 1}
        by_runner = {r.runner: r
                     for r in report_of(tmp_path / "f.db",
                                        campaign_id).rows}
        assert by_runner["flaky"].state == "done"
        assert by_runner["flaky"].attempt == 2
        assert by_runner["broken"].state == "quarantined"
        assert by_runner["broken"].error_class == "InjectedFailure"
        assert by_runner["alternating"].state == "failed"
        assert by_runner["alternating"].attempt == FAST.max_attempts

    def test_wall_clock_budget_leaves_campaign_resumable(self, tmp_path):
        path = tmp_path / "w.db"
        with CampaignStore(path) as store:
            campaign_id = submit_campaign(store, [sleep_grid(8, 0.3)])
        runner = CampaignRunner(path, campaign_id, max_workers=1,
                                lease_s=1.0, poll_s=0.05, policy=FAST)
        with pytest.raises(CampaignError, match="wall-clock budget"):
            runner.run(max_wall_s=0.4)
        # The interrupted campaign resumes to completion.
        resumed = CampaignRunner(path, campaign_id, max_workers=2,
                                 lease_s=1.0, poll_s=0.05, policy=FAST)
        counts = resumed.run(max_wall_s=90.0)
        assert counts["done"] == 8


class TestOrchestratorKill9:
    """SIGKILL the orchestrator process mid-campaign, then resume."""

    CELLS = 8

    def _spawn_orchestrator(self, store_path, campaign_id):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "campaign", "run",
             "--store", str(store_path), "--id", str(campaign_id),
             "--workers", "2", "--lease", "1.0",
             "--max-attempts", "3", "--backoff", "0.05"],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)

    def _wait_for_progress(self, store_path, campaign_id, proc):
        # Kill once some cells are done but others are still active:
        # the most adversarial window, mixing every run state.
        deadline = time.monotonic() + 60.0
        with CampaignStore(store_path) as store:
            while time.monotonic() < deadline:
                counts = store.counts(campaign_id)
                if counts["done"] >= 2 and \
                        store.active_count(campaign_id) > 0:
                    return counts
                if proc.poll() is not None:
                    pytest.fail("orchestrator finished before the kill "
                                f"window: {counts}")
                time.sleep(0.02)
        pytest.fail("campaign never reached the kill window")

    def test_kill9_resume_matches_uninterrupted_digest(self, tmp_path):
        grids = [sleep_grid(self.CELLS, duration_s=0.25)]

        # Control: the same grid run start-to-finish, separate store.
        control_id, control_counts = run_grids(
            tmp_path / "control.db", grids)
        assert control_counts["done"] == self.CELLS
        control = report_of(tmp_path / "control.db", control_id)

        # Interrupted: kill -9 the orchestrator mid-campaign.
        path = tmp_path / "killed.db"
        with CampaignStore(path) as store:
            campaign_id = submit_campaign(store, grids)
        proc = self._spawn_orchestrator(path, campaign_id)
        try:
            at_kill = self._wait_for_progress(path, campaign_id, proc)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        assert at_kill["done"] < self.CELLS

        # Resume in-process; leases of the killed claims age out.
        resumed = CampaignRunner(path, campaign_id, max_workers=2,
                                 lease_s=1.0, poll_s=0.05, policy=FAST)
        counts = resumed.run(max_wall_s=90.0)

        # Exactly once: (campaign_id, spec_id) is the primary key, so
        # "every cell done" means one terminal record per cell.
        assert counts["done"] == self.CELLS
        interrupted = report_of(path, campaign_id)
        assert interrupted.complete
        # The digest covers state + results only — the detour through
        # the crash must be invisible in the final report.
        assert interrupted.digest() == control.digest()
        # Cells finished before the kill were not re-run.
        finished_before_kill = at_kill["done"]
        untouched = [r for r in interrupted.rows if r.attempt == 1]
        assert len(untouched) >= finished_before_kill
