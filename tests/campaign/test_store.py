"""Durable results store (`repro.campaign.store`).

The contract under test: every state transition is atomic and
token-guarded, so concurrent claimants can never double-claim a cell,
a stale worker can never overwrite a newer attempt, and a terminal
state is recorded exactly once.
"""

import pytest

from repro.campaign.grid import CampaignGrid, expand_grids
from repro.campaign.policy import RetryPolicy
from repro.campaign.store import (
    ACTIVE_STATES,
    STATES,
    TERMINAL_STATES,
    CampaignStore,
    open_store_readonly,
)
from repro.errors import CampaignStoreError


def make_campaign(store, cells=3):
    specs = expand_grids([CampaignGrid(
        runner="sleep", axes={"cell": tuple(range(cells))})])
    campaign_id = store.create_campaign("test")
    store.add_runs(campaign_id, specs)
    return campaign_id, specs


@pytest.fixture
def store(tmp_path):
    with CampaignStore(tmp_path / "campaigns.db") as s:
        yield s


class TestSchema:
    def test_states_partition(self):
        assert set(STATES) == set(ACTIVE_STATES) | set(TERMINAL_STATES)

    def test_missing_store_raises_typed(self, tmp_path):
        with pytest.raises(CampaignStoreError):
            open_store_readonly(tmp_path / "nope.db")

    def test_corrupt_store_raises_typed(self, tmp_path):
        path = tmp_path / "corrupt.db"
        path.write_text("this is not a sqlite database at all........")
        with pytest.raises(CampaignStoreError):
            open_store_readonly(path)

    def test_unknown_campaign_raises_typed(self, store):
        with pytest.raises(CampaignStoreError):
            store.campaign(999)


class TestSubmission:
    def test_add_runs_is_idempotent(self, store):
        campaign_id, specs = make_campaign(store, cells=3)
        assert store.counts(campaign_id)["pending"] == 3
        # Resubmitting the same grid adds nothing and resets nothing.
        assert store.add_runs(campaign_id, specs) == 0
        assert store.counts(campaign_id)["pending"] == 3

    def test_counts_zero_filled(self, store):
        campaign_id, _ = make_campaign(store, cells=1)
        counts = store.counts(campaign_id)
        assert set(counts) == set(STATES)
        assert counts["done"] == 0


class TestClaiming:
    def test_claim_increments_attempt_and_stamps_token(self, store):
        campaign_id, _ = make_campaign(store, cells=1)
        row = store.claim_next(campaign_id, "orch-1", lease_s=10.0)
        assert row is not None
        assert row.state == "claimed"
        assert row.attempt == 1
        assert row.claim_token
        assert row.claimed_by == "orch-1"

    def test_no_double_claim(self, store):
        # The atomicity invariant: N cells yield exactly N successful
        # claims no matter how many claimants race.
        campaign_id, _ = make_campaign(store, cells=2)
        first = store.claim_next(campaign_id, "a", 10.0)
        second = store.claim_next(campaign_id, "b", 10.0)
        third = store.claim_next(campaign_id, "c", 10.0)
        assert first is not None and second is not None
        assert first.spec_id != second.spec_id
        assert third is None

    def test_backoff_gate_defers_claims(self, store):
        campaign_id, _ = make_campaign(store, cells=1)
        row = store.claim_next(campaign_id, "a", 10.0, now=100.0)
        store.mark_running(campaign_id, row.spec_id, row.claim_token,
                           now=100.0)
        state = store.record_failure(
            campaign_id, row.spec_id, row.claim_token,
            RetryPolicy(max_attempts=3, base_backoff_s=5.0),
            error_class="TransientWorkerError", error="x",
            traceback_text="", wall_time_s=0.1, now=100.0)
        assert state == "pending"
        # Not claimable until the backoff gate passes...
        assert store.claim_next(campaign_id, "a", 10.0, now=101.0) is None
        assert store.next_wakeup(campaign_id) == pytest.approx(105.0)
        # ...then claimable again.
        assert store.claim_next(campaign_id, "a", 10.0, now=106.0) \
            is not None

    def test_release_claim_only_before_running(self, store):
        campaign_id, _ = make_campaign(store, cells=1)
        row = store.claim_next(campaign_id, "a", 10.0)
        assert store.release_claim(campaign_id, row.spec_id,
                                   row.claim_token)
        released = store.run(campaign_id, row.spec_id)
        assert released.state == "pending"
        assert released.attempt == 0  # the aborted claim is not charged
        row = store.claim_next(campaign_id, "a", 10.0)
        store.mark_running(campaign_id, row.spec_id, row.claim_token)
        # A running cell may still be executing: never release it.
        assert not store.release_claim(campaign_id, row.spec_id,
                                       row.claim_token)


class TestTokenGuards:
    def test_stale_token_cannot_record_done(self, store):
        campaign_id, _ = make_campaign(store, cells=1)
        row = store.claim_next(campaign_id, "a", 10.0)
        store.mark_running(campaign_id, row.spec_id, row.claim_token)
        assert not store.record_done(campaign_id, row.spec_id,
                                     "wrong-token", {"x": 1}, 0.1)
        assert store.run(campaign_id, row.spec_id).state == "running"

    def test_record_done_is_exactly_once(self, store):
        campaign_id, _ = make_campaign(store, cells=1)
        row = store.claim_next(campaign_id, "a", 10.0)
        store.mark_running(campaign_id, row.spec_id, row.claim_token)
        assert store.record_done(campaign_id, row.spec_id,
                                 row.claim_token, {"x": 1}, 0.1)
        # The token is consumed by the first terminal transition.
        assert not store.record_done(campaign_id, row.spec_id,
                                     row.claim_token, {"x": 2}, 0.1)
        assert store.run(campaign_id, row.spec_id).result == {"x": 1}

    def test_reclaimed_cell_drops_stale_worker_result(self, store):
        # The slow-worker race: the lease expires, the cell is re-queued
        # and re-claimed, and only then the presumed-dead worker finishes.
        campaign_id, _ = make_campaign(store, cells=1)
        row = store.claim_next(campaign_id, "a", lease_s=1.0, now=100.0)
        store.mark_running(campaign_id, row.spec_id, row.claim_token,
                           now=100.0)
        store.reclaim_expired(campaign_id, RetryPolicy(), now=102.0)
        fresh = store.claim_next(campaign_id, "b", 10.0, now=102.0)
        assert fresh is not None
        assert not store.record_done(campaign_id, row.spec_id,
                                     row.claim_token, {"stale": True}, 5.0)
        assert not store.heartbeat(campaign_id, row.spec_id,
                                   row.claim_token, 1.0)
        assert store.record_done(campaign_id, fresh.spec_id,
                                 fresh.claim_token, {"fresh": True}, 0.1)
        assert store.run(campaign_id, row.spec_id).result == {"fresh": True}


class TestLeases:
    def test_reclaim_requeues_expired_runs(self, store):
        campaign_id, _ = make_campaign(store, cells=2)
        row = store.claim_next(campaign_id, "a", lease_s=1.0, now=100.0)
        # Within the lease nothing is reclaimed.
        assert store.reclaim_expired(campaign_id, RetryPolicy(),
                                     now=100.5) == []
        reclaimed = store.reclaim_expired(campaign_id, RetryPolicy(),
                                          now=102.0)
        assert reclaimed == [row.spec_id]
        requeued = store.run(campaign_id, row.spec_id)
        assert requeued.state == "pending"
        assert requeued.attempt == 1  # the crashed attempt stays charged

    def test_heartbeat_extends_lease(self, store):
        campaign_id, _ = make_campaign(store, cells=1)
        row = store.claim_next(campaign_id, "a", lease_s=1.0, now=100.0)
        store.mark_running(campaign_id, row.spec_id, row.claim_token,
                           now=100.0)
        assert store.heartbeat(campaign_id, row.spec_id, row.claim_token,
                               lease_s=1.0, now=100.9)
        # Without the heartbeat the lease would have expired at 101.
        assert store.reclaim_expired(campaign_id, RetryPolicy(),
                                     now=101.5) == []

    def test_crash_looping_cell_is_quarantined(self, store):
        # A cell whose claimant dies on every attempt never reports a
        # typed error; the reclaim path must stop it, not loop forever.
        campaign_id, _ = make_campaign(store, cells=1)
        policy = RetryPolicy(max_attempts=2)
        now = 100.0
        for _ in range(policy.max_attempts):
            row = store.claim_next(campaign_id, "a", lease_s=1.0, now=now)
            assert row is not None
            now += 5.0
            store.reclaim_expired(campaign_id, policy, now=now)
        final = store.run(campaign_id, row.spec_id)
        assert final.state == "quarantined"
        assert final.error_class == "WorkerCrash"


class TestFailurePolicyIntegration:
    def _fail(self, store, campaign_id, policy, error_class, now):
        row = store.claim_next(campaign_id, "a", 10.0, now=now)
        store.mark_running(campaign_id, row.spec_id, row.claim_token,
                           now=now)
        return store.record_failure(
            campaign_id, row.spec_id, row.claim_token, policy,
            error_class=error_class, error="boom",
            traceback_text="tb", wall_time_s=0.1, now=now)

    def test_repeated_class_quarantines_after_retry(self, store):
        campaign_id, _ = make_campaign(store, cells=1)
        policy = RetryPolicy(max_attempts=5, base_backoff_s=0.0)
        assert self._fail(store, campaign_id, policy,
                          "InjectedFailure", now=100.0) == "pending"
        assert self._fail(store, campaign_id, policy,
                          "InjectedFailure", now=200.0) == "quarantined"
        row = store.runs(campaign_id, states=("quarantined",))[0]
        assert "deterministic failure" in row.error

    def test_alternating_classes_fail_on_budget(self, store):
        campaign_id, _ = make_campaign(store, cells=1)
        policy = RetryPolicy(max_attempts=3, base_backoff_s=0.0)
        assert self._fail(store, campaign_id, policy,
                          "ErrA", now=100.0) == "pending"
        assert self._fail(store, campaign_id, policy,
                          "ErrB", now=200.0) == "pending"
        assert self._fail(store, campaign_id, policy,
                          "ErrA", now=300.0) == "failed"
        row = store.runs(campaign_id, states=("failed",))[0]
        assert row.attempt == 3
        assert "retry budget exhausted" in row.error
