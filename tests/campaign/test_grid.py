"""Grid expansion and run-spec identity (`repro.campaign.grid`).

The contract under test: identical (runner, params) cells always map to
the same ``spec_id`` — across processes, sessions and store restarts —
so resubmission is idempotent and resume targets exactly the original
cell set.
"""

import json

import pytest

from repro.campaign.grid import (
    CampaignGrid,
    RunSpec,
    expand_grids,
    grids_from_payload,
    grids_payload,
    named_grids,
)
from repro.errors import CampaignError


class TestRunSpec:
    def test_spec_id_deterministic(self):
        a = RunSpec("measure", {"model": "resnet50", "gpus": 8})
        b = RunSpec("measure", {"gpus": 8, "model": "resnet50"})
        assert a.spec_id == b.spec_id
        assert len(a.spec_id) == 16

    def test_spec_id_distinguishes_cells(self):
        base = RunSpec("measure", {"model": "resnet50", "gpus": 8})
        assert base.spec_id != RunSpec(
            "measure", {"model": "resnet50", "gpus": 16}).spec_id
        assert base.spec_id != RunSpec(
            "hybrid", {"model": "resnet50", "gpus": 8}).spec_id

    def test_json_round_trip(self):
        spec = RunSpec("chaos", {"seed": 3, "fault_plan": "chaos:mtbf=0.35"})
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.spec_id == spec.spec_id

    def test_corrupt_spec_raises_typed(self):
        with pytest.raises(CampaignError):
            RunSpec.from_json("{not json")
        with pytest.raises(CampaignError):
            RunSpec.from_json('{"params": {}}')  # missing runner


class TestCampaignGrid:
    def test_expand_is_full_cross_product(self):
        grid = CampaignGrid(
            runner="measure",
            axes={"model": ("resnet50", "vgg16"), "gpus": (8, 16, 32)},
            base={"figure": "fig9"})
        specs = grid.expand()
        assert len(specs) == 6
        assert all(spec.params["figure"] == "fig9" for spec in specs)
        combos = {(spec.params["model"], spec.params["gpus"])
                  for spec in specs}
        assert combos == {(m, g) for m in ("resnet50", "vgg16")
                          for g in (8, 16, 32)}

    def test_expand_order_is_deterministic(self):
        grid = CampaignGrid(runner="sleep",
                            axes={"b": (1, 2), "a": ("x", "y")})
        ids = [spec.spec_id for spec in grid.expand()]
        assert ids == [spec.spec_id for spec in grid.expand()]

    def test_axis_base_overlap_rejected(self):
        with pytest.raises(CampaignError):
            CampaignGrid(axes={"gpus": (8,)}, base={"gpus": 16})

    def test_empty_axis_rejected(self):
        with pytest.raises(CampaignError):
            CampaignGrid(axes={"gpus": ()})

    def test_non_scalar_axis_value_rejected(self):
        with pytest.raises(CampaignError):
            CampaignGrid(axes={"gpus": ([8, 16],)})

    def test_payload_round_trip(self):
        grid = CampaignGrid(runner="chaos", axes={"seed": (0, 1)},
                            base={"gpus": 8})
        grids = grids_from_payload(grids_payload([grid]))
        assert len(grids) == 1
        assert [s.spec_id for s in grids[0].expand()] == \
            [s.spec_id for s in grid.expand()]

    def test_corrupt_payload_raises_typed(self):
        with pytest.raises(CampaignError):
            grids_from_payload("{not json")
        with pytest.raises(CampaignError):
            grids_from_payload(json.dumps({"runner": "x"}))  # not a list


class TestExpandGrids:
    def test_duplicate_cells_collapse(self):
        # Two figures sharing a (model, gpus) point measure it once.
        a = CampaignGrid(runner="measure", axes={"gpus": (8, 16)},
                         base={"model": "resnet50"})
        b = CampaignGrid(runner="measure", axes={"gpus": (16, 32)},
                         base={"model": "resnet50"})
        specs = expand_grids([a, b])
        assert len(specs) == 3
        assert len({s.spec_id for s in specs}) == 3

    def test_empty_campaign_rejected(self):
        with pytest.raises(CampaignError):
            expand_grids([])


class TestNamedGrids:
    def test_unknown_name_raises_typed(self):
        with pytest.raises(CampaignError, match="unknown grid"):
            named_grids("nope")

    def test_smoke_grid_is_tiny(self):
        specs = expand_grids(named_grids("smoke"))
        assert 1 <= len(specs) <= 8
        assert all(spec.runner == "measure" for spec in specs)

    def test_figures_grid_covers_fig9_to_fig13(self):
        grids = named_grids("figures")
        figures = {grid.base["figure"] for grid in grids}
        assert figures == {"fig9", "fig10", "fig11", "fig12", "fig13"}
        specs = expand_grids(grids)
        # Fig. 13 cells run the hybrid data+model-parallel runner.
        assert {s.runner for s in specs} == {"measure", "hybrid"}

    def test_chaos_grid_one_cell_per_seed(self):
        specs = expand_grids(named_grids("chaos"))
        assert {spec.params["seed"] for spec in specs} == {0, 1, 2, 3}
        assert all(spec.runner == "chaos" for spec in specs)
