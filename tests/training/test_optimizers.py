"""Tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.training.lr_schedule import LinearDecay, StepDecay
from repro.training.optimizer import SGD, Adam, AdamSGD


def quadratic_grads(params):
    """Gradient of f(x) = 0.5 * ||x||^2 is x itself."""
    return {name: value.copy() for name, value in params.items()}


class TestSGD:
    def test_plain_step(self):
        optimizer = SGD(lr=0.1)
        params = {"w": np.array([1.0, -2.0])}
        optimizer.step(params, {"w": np.array([0.5, 0.5])})
        np.testing.assert_allclose(params["w"], [0.95, -2.05])

    def test_momentum_accumulates(self):
        optimizer = SGD(lr=0.1, momentum=0.9)
        params = {"w": np.array([1.0])}
        optimizer.step(params, {"w": np.array([1.0])})
        first = params["w"].copy()
        optimizer.step(params, {"w": np.array([1.0])})
        # Second step moves further due to velocity.
        assert (1.0 - first[0]) < (first[0] - params["w"][0])

    def test_weight_decay(self):
        optimizer = SGD(lr=0.1, weight_decay=0.1)
        params = {"w": np.array([1.0])}
        optimizer.step(params, {"w": np.array([0.0])})
        assert params["w"][0] == pytest.approx(0.99)

    def test_converges_on_quadratic(self):
        optimizer = SGD(lr=0.3, momentum=0.5)
        params = {"w": np.array([5.0, -3.0])}
        for _ in range(100):
            optimizer.step(params, quadratic_grads(params))
        np.testing.assert_allclose(params["w"], [0.0, 0.0], atol=1e-6)

    def test_state_dict_roundtrip(self):
        optimizer = SGD(lr=0.1, momentum=0.9)
        params = {"w": np.array([1.0])}
        optimizer.step(params, {"w": np.array([1.0])})
        state = optimizer.state_dict()
        fresh = SGD(lr=0.1, momentum=0.9)
        fresh.load_state_dict(state)
        assert fresh.steps == 1
        np.testing.assert_array_equal(fresh._velocity["w"],
                                      optimizer._velocity["w"])

    def test_validation(self):
        with pytest.raises(TrainingError):
            SGD(lr=0)
        with pytest.raises(TrainingError):
            SGD(lr=0.1, momentum=1.0)
        optimizer = SGD(lr=0.1)
        with pytest.raises(TrainingError):
            optimizer.step({"a": np.zeros(1)}, {"b": np.zeros(1)})


class TestAdam:
    def test_converges_on_quadratic(self):
        optimizer = Adam(lr=0.1)
        params = {"w": np.array([5.0, -3.0])}
        for _ in range(300):
            optimizer.step(params, quadratic_grads(params))
        np.testing.assert_allclose(params["w"], [0.0, 0.0], atol=1e-3)

    def test_bias_correction_first_step(self):
        optimizer = Adam(lr=0.1)
        params = {"w": np.array([1.0])}
        optimizer.step(params, {"w": np.array([1.0])})
        # With bias correction the first step is ~lr in magnitude.
        assert params["w"][0] == pytest.approx(0.9, abs=1e-6)

    def test_validation(self):
        with pytest.raises(TrainingError):
            Adam(beta1=1.0)


class TestAdamSGD:
    def test_switches_phase_at_configured_step(self):
        optimizer = AdamSGD(switch_step=3)
        params = {"w": np.array([5.0])}
        for step in range(6):
            expected = optimizer.adam if step < 3 else optimizer.sgd
            assert optimizer.active is expected
            optimizer.step(params, quadratic_grads(params))

    def test_converges_on_quadratic(self):
        optimizer = AdamSGD(lr=0.1, sgd_lr=0.2, switch_step=50)
        params = {"w": np.array([5.0])}
        for _ in range(300):
            optimizer.step(params, quadratic_grads(params))
        assert abs(params["w"][0]) < 1e-3

    def test_set_lr_reaches_active_phase(self):
        optimizer = AdamSGD(switch_step=1)
        params = {"w": np.array([1.0])}
        optimizer.step(params, {"w": np.array([0.1])})
        optimizer.set_lr(0.5)
        assert optimizer.sgd.lr == 0.5

    def test_validation(self):
        with pytest.raises(TrainingError):
            AdamSGD(switch_step=0)


class TestSchedules:
    def test_linear_decay_endpoints(self):
        schedule = LinearDecay(base_lr=1.0, total_steps=11)
        assert schedule.lr_at(0) == pytest.approx(1.0)
        assert schedule.lr_at(10) == pytest.approx(0.0, abs=1e-12)
        assert schedule.lr_at(5) == pytest.approx(0.5)

    def test_linear_decay_with_floor(self):
        schedule = LinearDecay(base_lr=1.0, total_steps=11,
                               final_fraction=0.1)
        assert schedule.lr_at(10) == pytest.approx(0.1)

    def test_linear_decay_monotone_after_warmup(self):
        schedule = LinearDecay(base_lr=1.0, total_steps=100,
                               warmup_steps=10)
        rates = [schedule.lr_at(step) for step in range(10, 100)]
        assert rates == sorted(rates, reverse=True)

    def test_warmup_ramps_up(self):
        schedule = LinearDecay(base_lr=1.0, total_steps=100,
                               warmup_steps=10)
        ramp = [schedule.lr_at(step) for step in range(10)]
        assert ramp == sorted(ramp)
        assert ramp[0] == pytest.approx(0.1)

    def test_step_decay_milestones(self):
        schedule = StepDecay(base_lr=1.0, total_steps=100,
                             milestones=[30, 60], gamma=0.1)
        assert schedule.lr_at(29) == pytest.approx(1.0)
        assert schedule.lr_at(30) == pytest.approx(0.1)
        assert schedule.lr_at(60) == pytest.approx(0.01)

    def test_beyond_total_clamps(self):
        schedule = LinearDecay(base_lr=1.0, total_steps=10)
        assert schedule.lr_at(500) == schedule.lr_at(9)

    def test_validation(self):
        with pytest.raises(TrainingError):
            LinearDecay(base_lr=0, total_steps=10)
        with pytest.raises(TrainingError):
            LinearDecay(base_lr=1, total_steps=10, warmup_steps=10)
        with pytest.raises(TrainingError):
            StepDecay(base_lr=1, total_steps=10, milestones=[5, 3])
        with pytest.raises(TrainingError):
            LinearDecay(base_lr=1.0, total_steps=10).lr_at(-1)
