"""Tests for pipeline parallelism (timed plan + numeric equivalence)."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.models import get_model
from repro.training.numeric import TinyMLP, make_synthetic_task
from repro.training.pipeline import (
    NumericPipeline,
    plan_pipeline,
    run_pipeline_training,
)


class TestPlan:
    def test_stage_bounds_partition_layers(self):
        plan = plan_pipeline("vgg16", num_stages=4)
        assert plan.stage_bounds[0][0] == 0
        assert plan.stage_bounds[-1][1] == len(plan.model.layers)
        for (lo1, hi1), (lo2, hi2) in zip(plan.stage_bounds,
                                          plan.stage_bounds[1:]):
            assert hi1 == lo2
        assert all(hi > lo for lo, hi in plan.stage_bounds)

    def test_stages_flops_balanced(self):
        plan = plan_pipeline("bert-large", num_stages=4)
        flops = [plan.stage_spec(s).forward_flops
                 for s in range(plan.num_stages)]
        assert max(flops) < 2.0 * min(f for f in flops if f > 0)

    def test_bubble_fraction_formula(self):
        plan = plan_pipeline("resnet50", num_stages=4, micro_batches=12)
        assert plan.bubble_fraction == pytest.approx(3 / 15)

    def test_more_micro_batches_smaller_bubble(self):
        few = plan_pipeline("resnet50", 4, micro_batches=4)
        many = plan_pipeline("resnet50", 4, micro_batches=32)
        assert many.bubble_fraction < few.bubble_fraction

    def test_default_micro_batches(self):
        plan = plan_pipeline("resnet50", num_stages=4)
        assert plan.micro_batches == 16

    def test_single_stage_no_bubble(self):
        plan = plan_pipeline("resnet50", num_stages=1)
        assert plan.bubble_fraction == 0.0
        assert plan.stage_spec(0).num_parameters == \
            plan.model.num_parameters

    def test_too_many_stages_rejected(self):
        with pytest.raises(TrainingError):
            plan_pipeline("vgg16", num_stages=1000)

    def test_stage_parameters_sum_to_model(self):
        plan = plan_pipeline("resnet101", num_stages=8)
        total = sum(plan.stage_spec(s).num_parameters
                    for s in range(plan.num_stages))
        assert total == plan.model.num_parameters


class TestTimedPipeline:
    def test_runs_and_reports(self):
        result = run_pipeline_training("bert-large", "aiacc", 32,
                                       num_stages=4,
                                       measure_iterations=2,
                                       warmup_iterations=1)
        assert result.throughput > 0

    def test_pipeline_reduces_per_gpu_gradient_volume(self):
        # With 4 stages each GPU all-reduces ~1/4 of the model, so a
        # comm-bound model trains faster per pipeline than pure DP on
        # the same worker count would for the full model... verified
        # indirectly: the pacing stage has ~1/4 the parameters.
        plan = plan_pipeline("bert-large", num_stages=4)
        pacing = plan.heaviest_stage_spec()
        assert pacing.num_parameters < 0.5 * plan.model.num_parameters

    def test_indivisible_gpus_rejected(self):
        with pytest.raises(TrainingError):
            run_pipeline_training("bert-large", "aiacc", 10, num_stages=4)


class TestNumericPipeline:
    def test_equivalent_to_full_batch_backward(self):
        task = make_synthetic_task(num_samples=64, seed=0)
        model = TinyMLP(16, 8, 4, seed=1)
        inputs, labels = task.inputs[:32], task.labels[:32]

        ref_loss, ref_grads = TinyMLP.loss_and_grads(
            model.parameters, inputs, labels)
        pipeline = NumericPipeline(model.parameters, micro_batches=4)
        pipe_loss, pipe_grads = pipeline.loss_and_grads(inputs, labels)

        assert pipe_loss == pytest.approx(ref_loss, rel=1e-9)
        for name in ref_grads:
            np.testing.assert_allclose(pipe_grads[name], ref_grads[name],
                                       rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("micro_batches", [1, 2, 8])
    def test_any_micro_batch_count(self, micro_batches):
        task = make_synthetic_task(num_samples=64, seed=2)
        model = TinyMLP(16, 8, 4, seed=3)
        pipeline = NumericPipeline(model.parameters,
                                   micro_batches=micro_batches)
        _, ref = TinyMLP.loss_and_grads(model.parameters,
                                        task.inputs[:32], task.labels[:32])
        _, got = pipeline.loss_and_grads(task.inputs[:32], task.labels[:32])
        for name in ref:
            np.testing.assert_allclose(got[name], ref[name], rtol=1e-9,
                                       atol=1e-12)

    def test_indivisible_batch_rejected(self):
        model = TinyMLP(16, 8, 4)
        pipeline = NumericPipeline(model.parameters, micro_batches=3)
        task = make_synthetic_task(num_samples=32, seed=4)
        with pytest.raises(TrainingError):
            pipeline.loss_and_grads(task.inputs[:32], task.labels[:32])
