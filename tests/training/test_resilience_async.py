"""Tests for failure-injected training and asynchronous data parallelism."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.training.async_dp import StaleGradientTrainer, async_iteration_time_s
from repro.training.numeric import TinyMLP, make_synthetic_task
from repro.training.optimizer import SGD
from repro.training.resilience import (
    checkpoint_write_time_s,
    optimal_checkpoint_interval,
    simulate_resilient_training,
)


class TestResilience:
    def test_no_failures_only_checkpoint_overhead(self):
        result = simulate_resilient_training(
            "resnet50", iteration_time_s=0.25, total_iterations=100,
            checkpoint_interval=10)
        assert result.failures == 0
        assert result.wasted_iterations == 0
        assert result.recovery_time_s == 0.0
        expected_ckpts = 10 * checkpoint_write_time_s("resnet50")
        assert result.checkpoint_time_s == pytest.approx(expected_ckpts)
        assert result.goodput < 1.0

    def test_failure_loses_work_since_checkpoint(self):
        result = simulate_resilient_training(
            "resnet50", iteration_time_s=0.25, total_iterations=100,
            checkpoint_interval=10, failure_at=[25])
        # Failure after iteration 26 (index 25): 6 iterations past the
        # checkpoint at 20 are lost.
        assert result.failures == 1
        assert result.wasted_iterations == 6
        assert result.recovery_time_s > 30.0

    def test_failure_right_after_checkpoint_loses_one(self):
        result = simulate_resilient_training(
            "resnet50", iteration_time_s=0.25, total_iterations=50,
            checkpoint_interval=10, failure_at=[10])
        assert result.wasted_iterations == 1

    def test_multiple_failures(self):
        result = simulate_resilient_training(
            "resnet50", iteration_time_s=0.25, total_iterations=100,
            checkpoint_interval=20, failure_at=[30, 70])
        assert result.failures == 2
        assert result.wasted_iterations > 0
        assert result.goodput < 0.95

    def test_tighter_checkpoints_help_under_failures(self):
        failures = list(range(9, 200, 20))
        loose = simulate_resilient_training(
            "bert-large", 1.0, 200, checkpoint_interval=100,
            failure_at=failures)
        tight = simulate_resilient_training(
            "bert-large", 1.0, 200, checkpoint_interval=10,
            failure_at=failures)
        assert tight.total_time_s < loose.total_time_s

    def test_goodput_definition(self):
        result = simulate_resilient_training(
            "resnet50", 0.5, 40, 10, failure_at=[15])
        assert result.goodput == pytest.approx(
            result.ideal_time_s / result.total_time_s)

    def test_validation(self):
        with pytest.raises(TrainingError):
            simulate_resilient_training("resnet50", 0, 10, 5)
        with pytest.raises(TrainingError):
            simulate_resilient_training("resnet50", 1.0, 10, 5,
                                        failure_at=[99])

    def test_optimal_interval_monotone_in_mtbf(self):
        stable = optimal_checkpoint_interval(0.25, 100_000, "resnet50")
        flaky = optimal_checkpoint_interval(0.25, 1_000, "resnet50")
        assert stable > flaky >= 1

    def test_optimal_interval_validation(self):
        with pytest.raises(TrainingError):
            optimal_checkpoint_interval(0, 100, "resnet50")


class TestAsyncDataParallel:
    def test_zero_staleness_matches_sequential_sgd(self):
        task = make_synthetic_task(num_samples=256, seed=0)
        model = TinyMLP(16, 8, 4, seed=1)
        trainer = StaleGradientTrainer(model, SGD(lr=0.1), num_workers=2,
                                       staleness=0)
        trainer.train(task, steps=5, batch_per_worker=16)

        reference = TinyMLP(16, 8, 4, seed=1)
        optimizer = SGD(lr=0.1)
        cursor = 0
        for _ in range(5):
            for _worker in range(2):
                lo = cursor % (256 - 16 + 1)
                cursor += 16
                _, grads = TinyMLP.loss_and_grads(
                    reference.parameters, task.inputs[lo:lo + 16],
                    task.labels[lo:lo + 16])
                optimizer.step(reference.parameters, grads)
        for name in reference.parameters:
            np.testing.assert_allclose(trainer.parameters[name],
                                       reference.parameters[name],
                                       rtol=1e-12)

    def test_stale_training_still_converges(self):
        task = make_synthetic_task(num_samples=512, seed=2)
        model = TinyMLP(16, 16, 4, seed=3)
        trainer = StaleGradientTrainer(model, SGD(lr=0.1), num_workers=4,
                                       staleness=4)
        losses = trainer.train(task, steps=25, batch_per_worker=16)
        assert losses[-1] < losses[0]

    def test_higher_staleness_slower_convergence(self):
        task = make_synthetic_task(num_samples=512, seed=4)

        def final_loss(staleness):
            model = TinyMLP(16, 16, 4, seed=5)
            trainer = StaleGradientTrainer(
                model, SGD(lr=0.3), num_workers=4, staleness=staleness)
            return trainer.train(task, steps=15, batch_per_worker=16)[-1]

        assert final_loss(8) > final_loss(0) * 0.9

    def test_delay_line_drained(self):
        task = make_synthetic_task(num_samples=128, seed=6)
        model = TinyMLP(16, 8, 4, seed=7)
        trainer = StaleGradientTrainer(model, SGD(lr=0.1), num_workers=2,
                                       staleness=6)
        trainer.train(task, steps=3, batch_per_worker=8)
        # 3 steps x 2 workers = 6 gradients, all must be applied.
        assert trainer.optimizer.steps == 6

    def test_timing_model(self):
        sync = 1.0
        exposed = 0.4
        assert async_iteration_time_s(sync, exposed, 0) == sync
        one = async_iteration_time_s(sync, exposed, 1)
        many = async_iteration_time_s(sync, exposed, 10)
        assert one == pytest.approx(0.8)
        assert many == pytest.approx(0.6, abs=1e-3)
        assert many < one < sync

    def test_timing_validation(self):
        with pytest.raises(TrainingError):
            async_iteration_time_s(1.0, 2.0, 1)
        with pytest.raises(TrainingError):
            async_iteration_time_s(0.0, 0.0, 1)

    def test_validation(self):
        model = TinyMLP(16, 8, 4)
        with pytest.raises(TrainingError):
            StaleGradientTrainer(model, SGD(lr=0.1), num_workers=0)
        with pytest.raises(TrainingError):
            StaleGradientTrainer(model, SGD(lr=0.1), num_workers=2,
                                 staleness=-1)
