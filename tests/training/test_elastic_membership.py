"""End-to-end elastic membership: scheduled leaves/joins in the driver.

Exercises `run_fault_injected_training` with `NodeLeave` / `NodeJoin`
events: scale-down must continue from live parameters (no checkpoint
restore), scale-up must admit joiners through the bit-identical live
broadcast, and both must advance the membership epoch visibly in the
trace and the observability timeline.
"""

import pytest

from repro.autotune.cache import SettingsCache
from repro.autotune.space import ParameterPoint
from repro.core.runtime import AIACCConfig
from repro.errors import ReproError
from repro.models.synthetic import random_model_spec
from repro.obs import Observability
from repro.sim.faults import FaultPlan, NodeCrash, NodeJoin, NodeLeave
from repro.training.resilience import run_fault_injected_training, \
    simulate_elastic_scaling


def small_spec():
    return random_model_spec(seed=0, num_layers=12,
                             total_parameters=5_000_000,
                             total_forward_flops=2e9)


def run(plan, **overrides):
    kwargs = dict(num_gpus=16, total_iterations=8, checkpoint_interval=3,
                  restart_overhead_s=2.0, sync_timeout_s=0.5,
                  unit_timeout_s=1.0, comm_retries=1, retry_backoff_s=0.1)
    kwargs.update(overrides)
    return run_fault_injected_training(small_spec(), plan, **kwargs)


class TestScaleDown:
    def test_clean_leave_continues_without_restore(self, tmp_path):
        result = run(FaultPlan([NodeLeave(at_s=0.2, node=1)]),
                     checkpoint_dir=str(tmp_path))
        # The departure is not a failure: nothing detected, nothing
        # restored, nothing lost.
        assert result.recoveries == ()
        assert result.wasted_iterations == 0
        assert result.final_num_gpus == 8
        assert result.final_epoch == 1
        assert result.final_lr_scale == pytest.approx(0.5)
        assert len(result.epoch_transitions) == 1
        transition = result.epoch_transitions[0]
        assert transition.kind == "scale-down"
        assert transition.departed == (1,)
        assert transition.live_continuation is True
        # The resumed iteration equals the boundary's completed count:
        # live continuation, not a checkpoint rollback.
        assert transition.resumed_iteration > 0
        counters = result.trace.counters
        assert counters["aiacc.faults.leave"] == 1
        assert counters["aiacc.epoch_advances"] == 1
        assert "aiacc.faults.restore" not in counters
        assert "aiacc.faults.confirm" not in counters

    def test_all_iterations_complete(self, tmp_path):
        result = run(FaultPlan([NodeLeave(at_s=0.2, node=1)]),
                     checkpoint_dir=str(tmp_path))
        assert len(result.iteration_times_s) == result.total_iterations


class TestScaleUp:
    def test_join_resumes_bit_identical_with_epoch_timeline(self,
                                                            tmp_path):
        obs = Observability()
        result = run(
            FaultPlan([NodeLeave(at_s=0.2, node=1),
                       NodeJoin(at_s=1.1, node=1)]),
            total_iterations=10, checkpoint_dir=str(tmp_path), obs=obs)
        assert [t.kind for t in result.epoch_transitions] == \
            ["scale-down", "scale-up"]
        up = result.epoch_transitions[1]
        assert up.joined == (1,)
        assert up.broadcast_identical is True
        assert up.live_continuation is True
        assert result.final_num_gpus == 16
        assert result.final_epoch == 2
        assert result.final_lr_scale == pytest.approx(1.0)
        # Epoch increments land in the observability timeline.
        advances = [i for i in obs.timeline.instants
                    if i.name == "epoch.advance"]
        assert [i.meta["epoch"] for i in advances] == [1, 2]
        assert all(i.cat == "membership" for i in advances)
        assert advances[0].meta["kind"] == "scale-down"
        assert advances[1].meta["kind"] == "scale-up"

    def test_join_of_new_identity_grows_the_group(self, tmp_path):
        result = run(FaultPlan([NodeJoin(at_s=0.2, node=8)]),
                     total_iterations=6, checkpoint_dir=str(tmp_path))
        assert result.final_num_gpus == 24
        assert result.final_lr_scale == pytest.approx(1.5)
        assert result.epoch_transitions[0].kind == "scale-up"
        assert result.recoveries == ()

    def test_join_rekeys_settings_cache(self, tmp_path):
        # Prime the tuner cache with a remembered deployment; the join
        # boundary must re-key against it and stamp the transition.
        cache = SettingsCache()
        cache.store("prior", small_spec(), _graph(num_nodes=9),
                    ParameterPoint(num_streams=4, granularity_bytes=8e6,
                                   algorithm="ring"), best_cost_s=0.01)
        result = run(FaultPlan([NodeJoin(at_s=0.2, node=8)]),
                     total_iterations=6, checkpoint_dir=str(tmp_path),
                     settings_cache=cache)
        assert result.epoch_transitions[0].retuned == "prior"

    def test_crash_then_rejoin_same_identity(self, tmp_path):
        # A node crashes (checkpoint-restore recovery), then the same
        # identity rejoins at a later epoch via the live broadcast.
        result = run(
            FaultPlan([NodeCrash(at_s=0.2, node=1),
                       NodeJoin(at_s=4.0, node=1)]),
            total_iterations=10, checkpoint_dir=str(tmp_path))
        kinds = [t.kind for t in result.epoch_transitions]
        assert kinds == ["failure", "scale-up"]
        failure, up = result.epoch_transitions
        assert failure.live_continuation is False
        assert up.joined == (1,)
        assert result.final_num_gpus == 16
        assert len(result.recoveries) == 1


def _graph(num_nodes):
    from repro.sim.kernel import Simulator
    from repro.sim.topology import Cluster, NodeSpec

    cluster = Cluster(Simulator(), num_nodes, NodeSpec(gpus_per_node=2))
    return cluster.topology_graph()


class TestDetectionDeadlineCap:
    def test_config_validates_cap(self):
        AIACCConfig(max_detection_deadline_s=1.0)  # valid
        with pytest.raises(ReproError):
            AIACCConfig(max_detection_deadline_s=0.0)

    def test_detection_latency_stays_bounded(self, tmp_path):
        # Regression for the failure detector's exponential deadline
        # growth: with many retries configured, uncapped doubling made
        # confirmation latency explode (1+2+4+...+64 unit-timeouts).
        # The cap keeps it linear in the retry count.
        result = run(FaultPlan([NodeCrash(at_s=0.2, node=1)]),
                     comm_retries=6, total_iterations=6,
                     checkpoint_dir=str(tmp_path))
        rec = result.recoveries[0]
        # Uncapped doubling of the 0.5 s/1.0 s timeouts over 6 retries
        # would put confirmation > 60 s out; the 4x cap keeps each
        # deadline <= 4 s, bounding the whole detection well under that.
        assert rec.detection_latency_s < 40.0

    def test_explicit_cap_tightens_detection(self, tmp_path):
        capped = run(FaultPlan([NodeCrash(at_s=0.2, node=1)]),
                     comm_retries=4, total_iterations=6,
                     checkpoint_dir=str(tmp_path))
        assert capped.recoveries[0].detection_latency_s > 0


class TestElasticScalingMemoization:
    def test_one_measurement_per_world_size(self, monkeypatch):
        import types

        import repro.training.trainer as trainer

        calls = []

        def fake_run_training(spec, backend, num_gpus, batch_per_gpu=None,
                              measure_iterations=2, warmup_iterations=1):
            calls.append(num_gpus)
            return types.SimpleNamespace(
                mean_iteration_s=1.0 / num_gpus, batch_per_gpu=32)

        monkeypatch.setattr(trainer, "run_training", fake_run_training)
        phases, total = simulate_elastic_scaling(
            "resnet50", "aiacc", [(8, 2), (16, 2), (8, 2), (16, 2)])
        # Up-down-up schedule revisits both sizes; each measured once.
        assert sorted(calls) == [8, 16]
        assert len(phases) == 4
        assert total > 0

    def test_revisited_size_reuses_identical_measurement(self):
        phases, _ = simulate_elastic_scaling(
            "resnet50", "aiacc", [(8, 1), (16, 1), (8, 1)])
        assert phases[0].iteration_time_s == phases[2].iteration_time_s
        assert phases[0].samples == phases[2].samples
