"""End-to-end numeric training tests: distributed == single-worker math."""

import numpy as np
import pytest

from repro.core.runtime import AIACCConfig
from repro.errors import TrainingError
from repro.training.numeric import (
    TinyMLP,
    make_synthetic_task,
    train_data_parallel,
    train_single,
)
from repro.training.optimizer import SGD, DistributedOptimizer


class TestEquivalence:
    """Data-parallel training must match single-worker training."""

    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    def test_parameters_match_single_worker(self, num_workers):
        task = make_synthetic_task(num_samples=256, seed=0)
        global_batch = 32
        steps = 5

        reference = TinyMLP(16, 8, 4, seed=1)
        ref_losses = train_single(reference, task, SGD(lr=0.1), steps,
                                  global_batch)

        model = TinyMLP(16, 8, 4, seed=1)
        worker_params, dp_losses = train_data_parallel(
            model, task, SGD(lr=0.1), steps, num_workers, global_batch)

        for name, value in reference.parameters.items():
            for params in worker_params:
                np.testing.assert_allclose(params[name], value,
                                           rtol=1e-5, atol=1e-6)

    def test_workers_stay_in_sync(self):
        task = make_synthetic_task(seed=2)
        model = TinyMLP(16, 8, 4, seed=3)
        worker_params, _ = train_data_parallel(
            model, task, SGD(lr=0.1, momentum=0.9), 8, 4, 64)
        for name in worker_params[0]:
            for other in worker_params[1:]:
                np.testing.assert_array_equal(worker_params[0][name],
                                              other[name])

    def test_loss_decreases(self):
        task = make_synthetic_task(seed=4)
        model = TinyMLP(16, 16, 4, seed=5)
        _, losses = train_data_parallel(
            model, task, SGD(lr=0.2, momentum=0.9), 20, 2, 64)
        assert losses[-1] < losses[0] * 0.8

    def test_accuracy_improves(self):
        task = make_synthetic_task(num_samples=512, seed=6)
        model = TinyMLP(16, 16, 4, seed=7)
        before = TinyMLP.accuracy(model.parameters, task.inputs,
                                  task.labels)
        worker_params, _ = train_data_parallel(
            model, task, SGD(lr=0.2, momentum=0.9), 30, 4, 64)
        after = TinyMLP.accuracy(worker_params[0], task.inputs, task.labels)
        assert after > max(before, 0.5)

    def test_fp16_compression_still_converges(self):
        task = make_synthetic_task(seed=8)
        model = TinyMLP(16, 16, 4, seed=9)
        config = AIACCConfig(fp16_compression=True)
        _, losses = train_data_parallel(
            model, task, SGD(lr=0.2), 20, 2, 64, config=config)
        assert losses[-1] < losses[0]

    def test_small_granularity_same_result_as_large(self):
        task = make_synthetic_task(seed=10)
        tiny_units = train_data_parallel(
            TinyMLP(16, 8, 4, seed=11), task, SGD(lr=0.1), 4, 2, 32,
            config=AIACCConfig(granularity_bytes=512 * 1024))[0]
        default_units = train_data_parallel(
            TinyMLP(16, 8, 4, seed=11), task, SGD(lr=0.1), 4, 2, 32)[0]
        for name in tiny_units[0]:
            np.testing.assert_allclose(tiny_units[0][name],
                                       default_units[0][name], rtol=1e-6)

    def test_indivisible_batch_rejected(self):
        task = make_synthetic_task(seed=12)
        with pytest.raises(TrainingError):
            train_data_parallel(TinyMLP(16, 8, 4), task, SGD(lr=0.1),
                                1, 3, 32)


class TestDistributedOptimizer:
    def test_worker_count_validated(self):
        from repro.core.perseus import init

        session = init(2)
        optimizer = DistributedOptimizer(SGD(lr=0.1), session)
        with pytest.raises(TrainingError):
            optimizer.step([{"w": np.zeros(2)}], [{"w": np.zeros(2)}])

    def test_auto_registration_on_first_step(self):
        from repro.core.perseus import init

        session = init(2)
        optimizer = DistributedOptimizer(SGD(lr=0.1), session)
        params = [{"w": np.ones(3)} for _ in range(2)]
        grads = [{"w": np.full(3, 0.5)} for _ in range(2)]
        optimizer.step(params, grads)
        assert session.registered
        np.testing.assert_allclose(params[0]["w"], np.full(3, 0.95))
