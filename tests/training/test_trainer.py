"""Tests for the timed trainer, hybrid parallelism and convergence model."""

import pytest

from repro.errors import TrainingError
from repro.sim.rdma import RDMA
from repro.training.convergence import (
    AIACC_RECIPE_EPOCHS,
    BASELINE_RECIPE_EPOCHS,
    time_to_accuracy,
)
from repro.training.hybrid import make_hybrid_plan, run_hybrid_training
from repro.training.trainer import run_training


class TestRunTraining:
    def test_deterministic(self):
        a = run_training("resnet50", "aiacc", 16, measure_iterations=3,
                         warmup_iterations=1)
        b = run_training("resnet50", "aiacc", 16, measure_iterations=3,
                         warmup_iterations=1)
        assert a.iteration_times_s == b.iteration_times_s

    def test_throughput_definition(self):
        result = run_training("resnet50", "aiacc", 16,
                              batch_per_gpu=32, measure_iterations=2,
                              warmup_iterations=0)
        expected = 16 * 32 / result.mean_iteration_s
        assert result.throughput == pytest.approx(expected)

    def test_scaling_efficiency_below_one(self):
        result = run_training("vgg16", "horovod", 64,
                              measure_iterations=2, warmup_iterations=1)
        assert 0 < result.scaling_efficiency < 1

    def test_more_gpus_more_throughput(self):
        small = run_training("resnet50", "aiacc", 8,
                             measure_iterations=2, warmup_iterations=1)
        large = run_training("resnet50", "aiacc", 64,
                             measure_iterations=2, warmup_iterations=1)
        assert large.throughput > 4 * small.throughput

    def test_default_batch_from_model(self):
        result = run_training("bert-large", "aiacc", 8,
                              measure_iterations=1, warmup_iterations=0)
        assert result.batch_per_gpu == 16

    def test_rdma_transport_faster_for_comm_bound(self):
        tcp = run_training("gpt2-xl", "aiacc", 64, measure_iterations=2,
                           warmup_iterations=1)
        rdma = run_training("gpt2-xl", "aiacc", 64, measure_iterations=2,
                            warmup_iterations=1, transport=RDMA,
                            nic_bandwidth_bps=100e9)
        assert rdma.throughput > tcp.throughput

    def test_invalid_iteration_counts_rejected(self):
        with pytest.raises(TrainingError):
            run_training("resnet50", "aiacc", 8, measure_iterations=0)

    def test_backend_options_require_name(self):
        from repro.frameworks import HorovodBackend

        with pytest.raises(TrainingError):
            run_training("resnet50", HorovodBackend(), 8,
                         backend_options={"cycle_time_s": 1e-3})


class TestHybrid:
    def test_plan_shards_parameters(self):
        plan = make_hybrid_plan("resnet50", 4)
        shard = plan.per_gpu_spec()
        assert shard.num_parameters == pytest.approx(
            plan.model.num_parameters / 4, rel=0.01)

    def test_mp_degree_one_is_identity(self):
        plan = make_hybrid_plan("resnet50", 1)
        assert plan.per_gpu_spec() is plan.model
        assert plan.activation_exchange_time_s(64, 1e12) == 0.0

    def test_aiacc_beats_kvstore_and_gap_grows(self):
        # Fig. 13's shape: AIACC / MXNet-KVStore improves with scale.
        ratios = []
        for gpus in (16, 64):
            aiacc = run_hybrid_training("resnet50", "aiacc", gpus, 2,
                                        measure_iterations=2,
                                        warmup_iterations=1)
            kvstore = run_hybrid_training("resnet50", "mxnet-kvstore",
                                          gpus, 2, measure_iterations=2,
                                          warmup_iterations=1)
            ratios.append(aiacc.throughput / kvstore.throughput)
        assert ratios[0] > 1.0
        assert ratios[1] > ratios[0]

    def test_indivisible_gpu_count_rejected(self):
        with pytest.raises(TrainingError):
            run_hybrid_training("resnet50", "aiacc", 10, 4)


class TestConvergence:
    def test_dawnbench_metrics(self):
        result = time_to_accuracy(throughput_samples_per_s=44000,
                                  num_gpus=128)
        assert result.num_instances == 16
        assert result.train_seconds == pytest.approx(
            1_281_167 * AIACC_RECIPE_EPOCHS / 44000)
        assert result.cost_usd > 0

    def test_better_recipe_fewer_epochs(self):
        fast = time_to_accuracy(44000, 128,
                                epochs_to_target=AIACC_RECIPE_EPOCHS)
        slow = time_to_accuracy(44000, 128,
                                epochs_to_target=BASELINE_RECIPE_EPOCHS)
        assert fast.train_seconds < slow.train_seconds / 5

    def test_validation(self):
        with pytest.raises(TrainingError):
            time_to_accuracy(0, 128)
        with pytest.raises(TrainingError):
            time_to_accuracy(1000, 0)


class TestLogging:
    def test_trainer_emits_debug_measurement(self, caplog):
        import logging

        with caplog.at_level(logging.DEBUG, logger="repro.training"):
            run_training("resnet50", "aiacc", 8, measure_iterations=1,
                         warmup_iterations=0)
        assert any("resnet50/aiacc" in record.message
                   for record in caplog.records)

    def test_tuner_logs_improvements(self, caplog):
        import logging

        from repro.autotune import AutoTuner

        with caplog.at_level(logging.DEBUG, logger="repro.autotune"):
            AutoTuner(budget=5, seed=0).tune(
                lambda point: float(point.num_streams))
        assert any("new best" in record.message
                   for record in caplog.records)
