"""End-to-end fault-injected training (fast path, tier-1).

The full 16-worker acceptance run lives in
``benchmarks/test_fault_recovery.py``; this file covers the recovery
driver with a small model so it stays in the sub-second range.
"""

import pytest

from repro.errors import TrainingError
from repro.models.synthetic import random_model_spec
from repro.sim.faults import FaultPlan, NodeCrash
from repro.training.resilience import run_fault_injected_training


def small_spec():
    return random_model_spec(seed=0, num_layers=12,
                             total_parameters=5_000_000,
                             total_forward_flops=2e9)


class TestFaultInjectedTraining:
    def test_crash_detect_rebuild_resume(self, tmp_path):
        result = run_fault_injected_training(
            small_spec(),
            FaultPlan([NodeCrash(at_s=0.2, node=1)]),
            num_gpus=16, total_iterations=10, checkpoint_interval=3,
            checkpoint_dir=str(tmp_path), restart_overhead_s=2.0,
            sync_timeout_s=0.5, unit_timeout_s=1.0, comm_retries=1,
            retry_backoff_s=0.1)
        # The run completed all iterations despite losing a node.
        assert result.total_iterations == 10
        assert result.initial_num_gpus == 16
        assert result.final_num_gpus == 8
        assert len(result.recoveries) == 1
        rec = result.recoveries[0]
        assert rec.failed_nodes == (1,)
        assert rec.injected_at_s == pytest.approx(0.2)
        # Detection: suspicion strictly after injection, confirmation
        # strictly after suspicion, resume after confirmation.
        assert rec.suspected_at_s > rec.injected_at_s
        assert rec.confirmed_at_s > rec.suspected_at_s
        assert rec.resumed_at_s > rec.confirmed_at_s
        assert rec.detection_latency_s > 0
        assert rec.rebuild_time_s >= 2.0  # at least the restart overhead
        # Restart rolls back to the last checkpoint boundary.
        assert rec.resumed_iteration % 3 == 0
        assert rec.lost_iterations >= 0
        assert result.wasted_iterations == rec.lost_iterations
        assert 0 < result.goodput <= 1.0

    def test_fault_events_reach_trace(self, tmp_path):
        result = run_fault_injected_training(
            small_spec(),
            FaultPlan([NodeCrash(at_s=0.2, node=1)]),
            num_gpus=16, total_iterations=6, checkpoint_interval=2,
            checkpoint_dir=str(tmp_path), restart_overhead_s=1.0,
            sync_timeout_s=0.5, unit_timeout_s=1.0, comm_retries=1,
            retry_backoff_s=0.1)
        counters = result.trace.counters
        for kind in ("inject", "suspect", "confirm", "rebuild", "restore"):
            assert counters[f"aiacc.faults.{kind}"] >= 1, kind
        chrome = result.trace.to_chrome_trace()
        names = {ev.get("name") for ev in chrome}
        assert {"aiacc.fault.inject", "aiacc.fault.confirm",
                "aiacc.fault.rebuild", "aiacc.fault.restore"} <= names

    def test_healthy_run_has_no_recoveries(self, tmp_path):
        result = run_fault_injected_training(
            small_spec(), FaultPlan([]),
            num_gpus=16, total_iterations=4, checkpoint_interval=2,
            checkpoint_dir=str(tmp_path))
        assert result.recoveries == ()
        assert result.wasted_iterations == 0
        assert result.final_num_gpus == 16
        assert len(result.iteration_times_s) == 4

    def test_rejects_plans_that_kill_every_node(self):
        plan = FaultPlan([NodeCrash(at_s=1.0, node=n) for n in range(2)])
        with pytest.raises(TrainingError):
            run_fault_injected_training(small_spec(), plan, num_gpus=16)

    def test_rejects_single_node_cluster(self):
        with pytest.raises(TrainingError):
            run_fault_injected_training(small_spec(), FaultPlan([]),
                                        num_gpus=8)
