"""Tests for the InsightFace workload and zoo completeness."""

import pytest

from repro.models import available_models, get_model
from repro.models.insightface import EMBEDDING_DIM, NUM_IDENTITIES


class TestInsightFace:
    def test_registered_in_zoo(self):
        assert "insightface-r50" in available_models()

    def test_head_dominates_parameters(self):
        spec = get_model("insightface-r50")
        head = next(layer for layer in spec.layers
                    if layer.name == "arcface_head")
        assert head.num_parameters == EMBEDDING_DIM * NUM_IDENTITIES
        assert head.num_parameters > 0.9 * spec.num_parameters

    def test_backbone_preserved(self):
        face = get_model("insightface-r50")
        resnet = get_model("resnet50")
        assert face.num_gradients == resnet.num_gradients + 1
        assert face.num_parameters == pytest.approx(
            resnet.num_parameters + EMBEDDING_DIM * NUM_IDENTITIES)

    def test_far_more_comm_bound_than_resnet(self):
        face = get_model("insightface-r50")
        resnet = get_model("resnet50")
        face_ratio = face.gradient_bytes / face.training_flops
        resnet_ratio = resnet.gradient_bytes / resnet.training_flops
        assert face_ratio > 5 * resnet_ratio

    def test_head_gradient_appears_first_in_backward(self):
        spec = get_model("insightface-r50")
        first_event = spec.backward_schedule()[0]
        names = [p.name for p in first_event.parameters]
        assert "arcface_head.weight" in names

    def test_custom_identity_count(self):
        from repro.models.insightface import build_insightface

        small = build_insightface(num_identities=10_000)
        assert small.num_parameters < get_model(
            "insightface-r50").num_parameters


class TestZooCompleteness:
    def test_eight_workloads(self):
        assert len(available_models()) == 8

    def test_every_model_has_valid_schedule(self):
        for name in available_models():
            spec = get_model(name)
            events = spec.backward_schedule()
            assert events, name
            assert events[-1].time_fraction == pytest.approx(1.0), name

    def test_specs_are_fresh_instances(self):
        # Builders must not share mutable state across calls.
        a = get_model("resnet50")
        b = get_model("resnet50")
        assert a is not b
        assert a.num_parameters == b.num_parameters
