"""Tests for the model memory-footprint estimates."""

import pytest

from repro.models import ModelSpecError, get_model
from repro.sim import V100


class TestMemoryModel:
    @pytest.mark.parametrize("name", ["vgg16", "resnet50", "resnet101",
                                      "transformer", "bert-large", "ctr"])
    def test_default_batch_fits_on_v100(self, name):
        spec = get_model(name)
        assert spec.memory_required_bytes(spec.default_batch_size) <= \
            V100.memory_bytes

    def test_gpt2_xl_exceeds_plain_fp32_v100(self):
        # Reality check: GPT-2 XL with fp32 Adam states does not fit a
        # 32 GB card without checkpointing/sharding — the memory model
        # should say so.
        spec = get_model("gpt2-xl")
        assert spec.memory_required_bytes(spec.default_batch_size) > \
            V100.memory_bytes

    def test_memory_monotone_in_batch(self):
        spec = get_model("resnet50")
        assert spec.memory_required_bytes(128) > \
            spec.memory_required_bytes(64)

    def test_max_batch_consistent_with_required(self):
        spec = get_model("resnet50")
        max_batch = spec.max_batch_size(V100.memory_bytes)
        assert spec.memory_required_bytes(max_batch) <= V100.memory_bytes
        assert spec.memory_required_bytes(max_batch + 1) > V100.memory_bytes

    def test_max_batch_larger_for_smaller_models(self):
        assert get_model("resnet50").max_batch_size(V100.memory_bytes) > \
            get_model("bert-large").max_batch_size(V100.memory_bytes)

    def test_tiny_memory_returns_zero(self):
        spec = get_model("bert-large")
        assert spec.max_batch_size(1e9) == 0

    def test_validation(self):
        spec = get_model("resnet50")
        with pytest.raises(ModelSpecError):
            spec.memory_required_bytes(0)
        with pytest.raises(ModelSpecError):
            spec.max_batch_size(0)

    def test_activation_proxy_scales_with_flops(self):
        assert get_model("resnet101").activation_bytes_per_sample > \
            get_model("resnet50").activation_bytes_per_sample
