"""Tests for the workload model specs (Table I reproduction)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.models import (
    IMAGENET,
    LayerSpec,
    ModelSpec,
    ModelSpecError,
    ParameterSpec,
    available_models,
    get_dataset,
    get_model,
    table1,
)


class TestTable1:
    """Table I: model characteristics must match the paper."""

    EXPECTED = {
        "vgg16": (138.3e6, 31e9),
        "resnet50": (25.6e6, 4e9),
        "resnet101": (29.4e6, 8e9),
        "transformer": (66.5e6, 145e9),
        "bert-large": (302.2e6, 232e9),
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_parameter_counts_match_paper(self, name):
        params, _ = self.EXPECTED[name]
        spec = get_model(name)
        assert spec.num_parameters == pytest.approx(params, rel=0.001)

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_flops_match_paper(self, name):
        _, flops = self.EXPECTED[name]
        spec = get_model(name)
        assert spec.reported_flops == pytest.approx(flops, rel=0.001)

    def test_table1_rows(self):
        rows = table1()
        assert [r["model"] for r in rows] == [
            "vgg16", "resnet50", "resnet101", "transformer", "bert-large"]
        for row in rows:
            assert row["parameters"] > 0
            assert row["flops"] > 0

    def test_gpt2_xl_size(self):
        spec = get_model("gpt2-xl")
        assert spec.num_parameters == pytest.approx(1558e6, rel=0.001)


class TestModelShape:
    def test_vgg_dominated_by_fc(self):
        spec = get_model("vgg16")
        fc_bytes = sum(layer.nbytes for layer in spec.layers
                       if layer.name.startswith("fc"))
        assert fc_bytes > 0.8 * spec.gradient_bytes

    def test_resnet50_has_many_small_gradients(self):
        spec = get_model("resnet50")
        assert spec.num_gradients > 100
        # Median gradient is small (batch-norm scale / small convs).
        sizes = sorted(p.nbytes for p in spec.parameters())
        assert sizes[len(sizes) // 2] < 1e6

    def test_ctr_has_thousands_of_gradients(self):
        spec = get_model("ctr")
        assert spec.num_gradients >= 2000
        assert spec.compute_occupancy < 0.5

    def test_bert_more_compute_intensive_than_resnet(self):
        bert = get_model("bert-large")
        resnet = get_model("resnet50")
        assert bert.compute_occupancy > resnet.compute_occupancy

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError):
            get_model("alexnet")

    def test_all_models_buildable(self):
        for name in available_models():
            spec = get_model(name)
            assert spec.num_parameters > 0
            assert spec.gradient_bytes == 4 * spec.num_parameters


class TestBackwardSchedule:
    @pytest.mark.parametrize("name", ["vgg16", "resnet50", "bert-large"])
    def test_schedule_is_reverse_ordered_and_monotone(self, name):
        spec = get_model(name)
        events = spec.backward_schedule()
        indices = [e.layer_index for e in events]
        assert indices == sorted(indices, reverse=True)
        fractions = [e.time_fraction for e in events]
        assert all(0 < f <= 1 for f in fractions)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_schedule_covers_all_parameters(self, ):
        spec = get_model("resnet50")
        scheduled = sum(len(e.parameters) for e in spec.backward_schedule())
        assert scheduled == spec.num_gradients

    def test_output_layer_gradients_first(self):
        spec = get_model("vgg16")
        first = spec.backward_schedule()[0]
        assert spec.layers[first.layer_index].name == "fc8"


class TestValidation:
    def test_empty_model_rejected(self):
        with pytest.raises(ModelSpecError):
            ModelSpec(name="empty", layers=(), compute_occupancy=0.5)

    def test_duplicate_parameter_names_rejected(self):
        layer = LayerSpec("l", (ParameterSpec("w", 10),), 1.0)
        with pytest.raises(ModelSpecError):
            ModelSpec(name="dup", layers=(layer, layer),
                      compute_occupancy=0.5)

    def test_bad_occupancy_rejected(self):
        layer = LayerSpec("l", (ParameterSpec("w", 10),), 1.0)
        with pytest.raises(ModelSpecError):
            ModelSpec(name="m", layers=(layer,), compute_occupancy=0.0)

    def test_zero_element_parameter_rejected(self):
        with pytest.raises(ModelSpecError):
            ParameterSpec("w", 0)

    def test_bad_dtype_rejected(self):
        with pytest.raises(ModelSpecError):
            ParameterSpec("w", 10, dtype_bytes=3)

    @given(target=st.integers(1_000, 10_000_000))
    def test_scaled_to_hits_parameter_target(self, target):
        spec = get_model("resnet50")
        scaled = spec.scaled_to(target, 1e9)
        # Rounding error bounded by number of tensors.
        assert abs(scaled.num_parameters - target) <= spec.num_gradients
        assert scaled.forward_flops == pytest.approx(1e9)


class TestDatasets:
    def test_imagenet_size(self):
        assert IMAGENET.num_samples == 1_281_167

    def test_iterations_per_epoch(self):
        assert IMAGENET.iterations_per_epoch(256) == 1_281_167 // 256

    def test_bad_batch_rejected(self):
        with pytest.raises(ReproError):
            IMAGENET.iterations_per_epoch(0)

    def test_lookup(self):
        assert get_dataset("wikitext-en").sample_unit == "sequences"
        with pytest.raises(ReproError):
            get_dataset("mnist")
