"""Meta-tests: README snippets run, API docs stay fresh, exports exist."""

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestReadmeSnippets:
    def test_python_snippet_executes(self):
        readme = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README must contain a python example"
        for block in blocks:
            exec(compile(block, "<README>", "exec"), {})  # noqa: S102

    def test_documented_examples_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.findall(r"python (examples/\w+\.py)", readme):
            assert (ROOT / match).exists(), match

    def test_documented_cli_commands_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        readme = (ROOT / "README.md").read_text()
        for line in re.findall(r"python -m repro ([^\n#]+)", readme):
            args = line.strip().split()
            # `translate` references a placeholder file; parsing suffices.
            parser.parse_args(args)


class TestApiDocs:
    def test_api_doc_covers_all_packages(self):
        api = (ROOT / "docs" / "api.md").read_text()
        for package in ("repro.sim", "repro.collectives", "repro.models",
                        "repro.frameworks", "repro.core", "repro.autotune",
                        "repro.training", "repro.harness", "repro.obs"):
            assert f"## `{package}`" in api, package

    def test_api_doc_in_sync_with_exports(self):
        # Every exported name must appear in the generated reference.
        api = (ROOT / "docs" / "api.md").read_text()
        missing = []
        for package in ("repro.core", "repro.training", "repro.harness",
                        "repro.obs"):
            module = importlib.import_module(package)
            for name in module.__all__:
                if f"`{name}`" not in api:
                    missing.append(f"{package}.{name}")
        assert not missing, (
            f"docs/api.md is stale; run tools/gen_api_docs.py: {missing}"
        )


class TestPublicSurface:
    @pytest.mark.parametrize("package", [
        "repro.sim", "repro.collectives", "repro.models",
        "repro.frameworks", "repro.core", "repro.autotune",
        "repro.training", "repro.harness", "repro.obs",
    ])
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for name in module.__all__:
            assert getattr(module, name) is not None, name

    @pytest.mark.parametrize("package", [
        "repro.sim", "repro.collectives", "repro.models",
        "repro.frameworks", "repro.core", "repro.autotune",
        "repro.training", "repro.harness", "repro.obs",
    ])
    def test_all_lists_sorted_unique(self, package):
        module = importlib.import_module(package)
        exported = list(module.__all__)
        assert len(exported) == len(set(exported)), "duplicate exports"

    def test_version_exposed(self):
        import repro

        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
