"""The simulation-wide invariant checker (repro.sim.invariants).

Covers the three invariant families (resource accounting, replay
determinism, cross-worker agreement) and — per the issue's acceptance
criteria — proves the checker detects each of the three hot-path bug
classes it was built to guard: degenerate pack slices, leaked sync
workers, and stream-dispatch overcounting.
"""

import pytest

from repro.core.packing import (
    AllReduceUnit,
    GradientPacker,
    SLICE_EPSILON_FRACTION,
    TensorSlice,
)
from repro.core.registration import GradientRegistry
from repro.core.runtime import AIACCConfig
from repro.core.streams import CommStreamPool
from repro.core.synchronization import DecentralizedSynchronizer
from repro.errors import InvariantViolation, SimulationError, SyncTimeoutError
from repro.models import ParameterSpec
from repro.sim import (
    Communicator,
    GPUDevice,
    InvariantChecker,
    Resource,
    Simulator,
    Store,
    V100,
    ensure_invariants,
    invariants_enabled_by_env,
)
from repro.sim.invariants import ENV_FLAG


def checked_sim():
    return Simulator(check_invariants=True)


def frozen_registry(names=("a", "b")):
    registry = GradientRegistry()
    for name in names:
        registry.register(ParameterSpec(name, 4))
    registry.freeze()
    for name in names:
        registry.mark_ready(name)
    return registry


class TestEnabling:
    def test_off_by_default(self, monkeypatch):
        # Neutralise the env flag: CI runs this suite with the checker
        # globally enabled, and this test is about the built-in default.
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert Simulator().invariants is None

    def test_explicit_flag_attaches(self):
        sim = checked_sim()
        assert isinstance(sim.invariants, InvariantChecker)
        assert sim.invariants.sim is sim

    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("yes", True),
        ("", False), ("0", False), ("false", False), ("no", False),
    ])
    def test_env_flag_parsing(self, monkeypatch, value, expected):
        monkeypatch.setenv(ENV_FLAG, value)
        assert invariants_enabled_by_env() is expected

    def test_env_flag_attaches_automatically(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert Simulator().invariants is not None
        # An explicit False overrides the environment.
        assert Simulator(check_invariants=False).invariants is None

    def test_env_flag_sets_config_default(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert AIACCConfig().check_invariants is True
        monkeypatch.delenv(ENV_FLAG)
        assert AIACCConfig().check_invariants is False

    def test_ensure_invariants_idempotent(self):
        sim = Simulator()
        checker = ensure_invariants(sim)
        assert ensure_invariants(sim) is checker

    def test_double_attach_rejected(self):
        sim = checked_sim()
        with pytest.raises(SimulationError):
            InvariantChecker().attach(sim)


class TestResourceAccounting:
    def test_clean_usage_passes(self):
        sim = checked_sim()
        resource = Resource(sim, capacity=2, name="r")

        def user():
            yield resource.acquire()
            yield sim.timeout(1.0)
            resource.release()

        for _ in range(4):
            sim.spawn(user())
        sim.run()
        assert resource.granted_slots == 4
        assert resource.released_slots == 4
        assert sim.invariants.checks > 0

    def test_ledger_corruption_detected(self):
        sim = checked_sim()
        resource = Resource(sim, capacity=2, name="r")
        assert resource.try_acquire()
        # Corrupt the books the way a lost-update bug would: usage
        # changes without a matching ledger entry.
        resource.in_use += 1
        with pytest.raises(InvariantViolation) as excinfo:
            resource.release()
        assert excinfo.value.invariant == "resource-ledger"

    def test_quiescence_detects_held_slot(self):
        sim = checked_sim()
        resource = Resource(sim, capacity=2, name="leaky")
        assert resource.try_acquire()
        with pytest.raises(InvariantViolation) as excinfo:
            sim.invariants.check_idle(resource, rank=3)
        assert excinfo.value.invariant == "resource-quiescent"
        assert excinfo.value.rank == 3

    def test_quiescence_detects_queued_request(self):
        sim = checked_sim()
        resource = Resource(sim, capacity=1, name="r")
        assert resource.try_acquire()
        resource.acquire()  # queues behind the held slot
        resource.release()
        sim.run()
        # The queued request was granted and never released.
        with pytest.raises(InvariantViolation):
            sim.invariants.check_idle(resource)

    def test_store_contradiction_detected(self):
        sim = checked_sim()
        store = Store(sim, name="s")
        store.put("a")
        store.put("b")
        # Corrupt the way a lost-wakeup bug would: a getter queued while
        # items sit buffered.  The next mutation still leaves both
        # populated, which the checker flags.
        store._getters.append(sim.event(name="starved"))
        with pytest.raises(InvariantViolation) as excinfo:
            store.get()
        assert excinfo.value.invariant == "store-no-starved-getters"

    def test_healthy_store_traffic_passes(self):
        sim = checked_sim()
        store = Store(sim, name="s")

        def producer():
            for i in range(5):
                yield sim.timeout(0.1)
                store.put(i)

        def consumer():
            got = []
            for _ in range(5):
                got.append((yield store.get()))
            return got

        sim.spawn(producer())
        proc = sim.spawn(consumer())
        sim.run()
        assert proc.value == [0, 1, 2, 3, 4]


class TestReplayDeterminism:
    def run_message_level(self, **kwargs):
        from repro.core.message_engine import run_message_level_iteration
        from repro.models.synthetic import random_model_spec

        spec = random_model_spec(seed=1, num_layers=6,
                                 total_parameters=300_000,
                                 total_forward_flops=1e8)
        return run_message_level_iteration(
            spec, num_nodes=2, gpus_per_node=2, check_invariants=True,
            **kwargs)

    def test_identical_runs_identical_digests(self):
        first = self.run_message_level()
        second = self.run_message_level()
        assert first.state_digest is not None
        assert first.state_digest == second.state_digest

    def test_different_workload_different_digest(self):
        base = self.run_message_level()
        other = self.run_message_level(
            config=AIACCConfig(granularity_bytes=1_000_000))
        assert base.state_digest != other.state_digest

    def test_digest_none_without_checker(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        sim = Simulator()
        assert sim.state_digest() is None

    def test_digest_reflects_event_sequence(self):
        sim = checked_sim()

        def ticker():
            yield sim.timeout(0.5)

        sim.spawn(ticker())
        sim.run()
        once = sim.state_digest()
        assert sim.invariants.events_hashed > 0
        # More events -> the digest moves.
        proc = sim.spawn(ticker())
        sim.run(until=proc)
        assert sim.state_digest() != once


class TestDegenerateSliceDetection:
    """Acceptance: reverting the packing fix must trip the checker."""

    GRANULARITY = 1.0

    def old_buggy_pack(self, gradients):
        """The pre-fix pack loop (exact-fullness close, no epsilon)."""
        units, current, current_bytes = [], [], 0.0
        next_id = 0
        for grad_id, nbytes in sorted(gradients):
            offset, remaining = 0.0, float(nbytes)
            while remaining > 0:
                room = self.GRANULARITY - current_bytes
                take = min(remaining, room)
                current.append(TensorSlice(grad_id, offset, take))
                current_bytes += take
                offset += take
                remaining -= take
                if current_bytes >= self.GRANULARITY:
                    units.append(AllReduceUnit(next_id, tuple(current)))
                    next_id += 1
                    current, current_bytes = [], 0.0
        if current:
            units.append(AllReduceUnit(next_id, tuple(current)))
        return units

    def test_old_pack_emits_degenerate_slice_and_is_caught(self):
        gradients = [(i, 0.1) for i in range(50)]
        units = self.old_buggy_pack(gradients)
        # Confirm the bug exists in the old algorithm...
        epsilon = self.GRANULARITY * SLICE_EPSILON_FRACTION
        assert any(s.nbytes < epsilon for u in units for s in u.slices)
        # ...and that the checker names it.
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_unit_plan(units, self.GRANULARITY, rank=2)
        assert excinfo.value.invariant == "no-degenerate-slices"
        assert excinfo.value.rank == 2

    def test_fixed_pack_passes_checker(self):
        units = GradientPacker(self.GRANULARITY).pack(
            [(i, 0.1) for i in range(50)])
        InvariantChecker().check_unit_plan(units, self.GRANULARITY)

    def test_whole_small_gradient_is_not_degenerate(self):
        # A gradient legitimately tiny relative to the granularity is
        # fine: only residues of *split* gradients are degenerate.
        units = GradientPacker(16e6).pack([(0, 1.0)])
        InvariantChecker().check_unit_plan(units, 16e6)

    def test_gap_detected_through_unpack(self):
        units = GradientPacker(1.0).pack([(0, 3.0)])
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation) as excinfo:
            checker.check_unit_plan([units[0], units[2]], 1.0)
        assert excinfo.value.invariant == "pack-contiguity"

    def test_underfull_interior_unit_detected(self):
        units = [
            AllReduceUnit(0, (TensorSlice(0, 0.0, 0.25),)),
            AllReduceUnit(1, (TensorSlice(1, 0.0, 1.0),)),
        ]
        with pytest.raises(InvariantViolation) as excinfo:
            InvariantChecker().check_unit_plan(units, 1.0)
        assert excinfo.value.invariant == "unit-granularity"


class TestLeakedSyncWorkerDetection:
    """Acceptance: reverting the timeout-interrupt fix trips the checker."""

    def make_pair(self):
        sim = checked_sim()
        comm = Communicator(sim, size=2)
        sync = DecentralizedSynchronizer(sim, comm, rank=0,
                                         registry=frozen_registry())
        return sim, comm, sync

    def test_fixed_timeout_path_passes(self):
        # With the fix, the timed-out round tears its worker down, so the
        # next round starts clean: it times out again (the peer is still
        # absent) but raises SyncTimeoutError, not InvariantViolation.
        sim, comm, sync = self.make_pair()
        first = sim.spawn(sync.sync_round(timeout_s=0.5))
        first.add_callback(lambda _ev: None)
        sim.run(until=first)
        assert isinstance(first.value, SyncTimeoutError)
        second = sim.spawn(sync.sync_round(timeout_s=0.5))
        second.add_callback(lambda _ev: None)
        sim.run(until=second)
        assert isinstance(second.value, SyncTimeoutError)

    def test_abandoned_worker_detected(self):
        # Simulate the reverted bug: a round's worker left alive when the
        # next round starts.  The shadow referee names the leak.
        sim, comm, sync = self.make_pair()
        from repro.collectives.primitives import ReduceOp
        from repro.collectives.ring import ring_allreduce_worker

        local = frozen_registry().sync_vector.copy()
        abandoned = sim.spawn(ring_allreduce_worker(
            sim, comm, 0, local, op=ReduceOp.MIN, tag_base=0),
            name="sync.r0")
        abandoned.add_callback(lambda _ev: None)
        sim.run(until=sim.timeout(1.0))
        assert abandoned.alive
        sim.invariants.on_sync_worker(sync, 0, 0, abandoned)
        fresh = sim.spawn(ring_allreduce_worker(
            sim, comm, 0, local.copy(), op=ReduceOp.MIN, tag_base=16384))
        fresh.add_callback(lambda _ev: None)
        with pytest.raises(InvariantViolation) as excinfo:
            sim.invariants.on_sync_worker(sync, 0, 1, fresh)
        assert excinfo.value.invariant == "no-leaked-sync-worker"
        assert excinfo.value.rank == 0

    def test_no_stale_getter_after_timeout(self):
        # The interrupted worker withdraws its pending recv, so a late
        # peer message cannot be silently consumed by a dead round.
        sim, comm, sync = self.make_pair()
        proc = sim.spawn(sync.sync_round(timeout_s=0.5))
        proc.add_callback(lambda _ev: None)
        sim.run(until=proc)
        assert all(not waiting for waiting in comm._waiting.values())


class TestDispatchOvercountDetection:
    """Acceptance: reverting count-on-grant trips the checker."""

    def make_pool(self):
        sim = checked_sim()
        pool = CommStreamPool(sim, GPUDevice(V100), num_streams=1,
                              compute_occupancy=0.0)
        return sim, pool

    def test_fixed_counter_passes_after_cancelled_request(self):
        sim, pool = self.make_pool()

        def never():
            return sim.event(name="hung")

        running = sim.spawn(pool.run_unit(never))
        running.add_callback(lambda _ev: None)
        queued = sim.spawn(pool.run_unit(never))
        queued.add_callback(lambda _ev: None)
        sim.run(until=sim.timeout(1.0))
        queued.interrupt("abort")
        sim.run(until=queued)
        assert pool.dispatched_units == 1
        sim.invariants.check_stream_accounting(pool)

    def test_count_on_request_drift_detected(self):
        # Simulate the reverted bug: the counter ticks for a request that
        # was withdrawn before any grant.
        sim, pool = self.make_pool()

        def never():
            return sim.event(name="hung")

        running = sim.spawn(pool.run_unit(never))
        running.add_callback(lambda _ev: None)
        queued = sim.spawn(pool.run_unit(never))
        queued.add_callback(lambda _ev: None)
        sim.run(until=sim.timeout(1.0))
        queued.interrupt("abort")
        sim.run(until=queued)
        pool.dispatched_units += 1  # the old acquire()-side increment
        with pytest.raises(InvariantViolation) as excinfo:
            sim.invariants.check_stream_accounting(pool, rank=1)
        assert excinfo.value.invariant == "stream-dispatch-count"
        assert excinfo.value.rank == 1


class TestCrossWorkerAgreement:
    def test_sync_results_must_agree(self):
        checker = InvariantChecker()
        checker.report_sync_result(0, 0, 4, [0, 1, 2])
        checker.report_sync_result(1, 0, 4, [0, 1, 2])
        with pytest.raises(InvariantViolation) as excinfo:
            checker.report_sync_result(2, 0, 4, [0, 1])
        assert excinfo.value.invariant == "sync-agreement"
        assert excinfo.value.rank == 2

    def test_unit_plans_must_agree(self):
        checker = InvariantChecker()
        plan_a = GradientPacker(100).pack([(0, 60), (1, 60)])
        plan_b = GradientPacker(100).pack([(0, 60), (1, 60)])
        checker.report_unit_plan(0, 0, plan_a, 100)
        checker.report_unit_plan(1, 0, plan_b, 100)  # identical: fine
        divergent = GradientPacker(100).pack([(0, 60), (1, 70)])
        with pytest.raises(InvariantViolation) as excinfo:
            checker.report_unit_plan(2, 0, divergent, 100)
        assert excinfo.value.invariant == "plan-agreement"

    def test_unit_ids_excluded_from_agreement(self):
        # Packer unit ids are call-ordered, not cross-worker stable; two
        # structurally identical plans with different ids must agree.
        checker = InvariantChecker()
        packer = GradientPacker(100)
        packer.pack([(9, 100)])  # burn ids on rank A's packer
        plan_a = packer.pack([(0, 60), (1, 60)])
        plan_b = GradientPacker(100).pack([(0, 60), (1, 60)])
        assert [u.unit_id for u in plan_a] != [u.unit_id for u in plan_b]
        checker.report_unit_plan(0, 1, plan_a, 100)
        checker.report_unit_plan(1, 1, plan_b, 100)


class TestEngineIntegration:
    def test_timed_training_under_checker(self):
        from repro.frameworks import make_backend
        from repro.models.synthetic import random_model_spec
        from repro.training.trainer import run_training

        spec = random_model_spec(seed=0, num_layers=8,
                                 total_parameters=2_000_000,
                                 total_forward_flops=1e9)
        backend = make_backend(
            "aiacc", config=AIACCConfig(check_invariants=True))
        result = run_training(spec, backend, 8,
                              measure_iterations=2, warmup_iterations=1)
        assert result.mean_iteration_s > 0
        assert backend._checker is not None
        assert backend._checker.checks > 0

    def test_message_level_referee_runs(self):
        from repro.core.message_engine import run_message_level_iteration
        from repro.models.synthetic import random_model_spec

        spec = random_model_spec(seed=2, num_layers=5,
                                 total_parameters=200_000,
                                 total_forward_flops=1e8)
        result = run_message_level_iteration(
            spec, num_nodes=2, gpus_per_node=2, check_invariants=True)
        assert result.state_digest is not None
        assert result.units > 0

    def test_fault_injected_run_completes_clean(self):
        # The issue's acceptance run, shrunk for test time: fault-injected
        # training on 16 workers under the checker completes with zero
        # violations and reports a replay digest.
        from repro.sim.faults import FaultPlan, NodeCrash
        from repro.models.synthetic import random_model_spec
        from repro.training.resilience import run_fault_injected_training

        spec = random_model_spec(seed=3, num_layers=8,
                                 total_parameters=2_000_000,
                                 total_forward_flops=1e9)
        result = run_fault_injected_training(
            spec, FaultPlan([NodeCrash(at_s=0.05, node=1)]),
            num_gpus=16, total_iterations=4, checkpoint_interval=2,
            sync_timeout_s=0.5, unit_timeout_s=1.0, comm_retries=1,
            retry_backoff_s=0.1, check_invariants=True)
        assert result.total_iterations == 4
        assert result.recoveries
        assert result.state_digest is not None
