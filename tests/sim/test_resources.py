"""Tests for Resource, Store and PriorityStore."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.resources import PriorityStore, Resource, Store


class TestResource:
    def test_capacity_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_acquire_release_cycle(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        log = []

        def worker(label, hold):
            yield resource.acquire()
            log.append((label, "in", sim.now))
            yield sim.timeout(hold)
            log.append((label, "out", sim.now))
            resource.release()

        sim.spawn(worker("a", 2.0))
        sim.spawn(worker("b", 1.0))
        sim.run()
        assert log == [
            ("a", "in", 0.0),
            ("a", "out", 2.0),
            ("b", "in", 2.0),
            ("b", "out", 3.0),
        ]

    def test_parallel_slots(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        done_times = []

        def worker():
            yield resource.acquire()
            yield sim.timeout(1.0)
            resource.release()
            done_times.append(sim.now)

        for _ in range(4):
            sim.spawn(worker())
        sim.run()
        assert done_times == [1.0, 1.0, 2.0, 2.0]

    def test_try_acquire(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        assert resource.try_acquire()
        assert not resource.try_acquire()
        resource.release()
        assert resource.try_acquire()

    def test_release_idle_raises(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_resize_wakes_waiters(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        entered = []

        def worker(label):
            yield resource.acquire()
            entered.append((label, sim.now))
            yield sim.timeout(10.0)
            resource.release()

        sim.spawn(worker("a"))
        sim.spawn(worker("b"))

        def grow():
            yield sim.timeout(1.0)
            resource.resize(2)

        sim.spawn(grow())
        sim.run()
        assert entered == [("a", 0.0), ("b", 1.0)]

    def test_available(self):
        sim = Simulator()
        resource = Resource(sim, capacity=3)
        assert resource.available == 3
        resource.try_acquire()
        assert resource.available == 2


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("x")
        results = []

        def getter():
            item = yield store.get()
            results.append(item)

        sim.spawn(getter())
        sim.run()
        assert results == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        results = []

        def getter():
            item = yield store.get()
            results.append((item, sim.now))

        def putter():
            yield sim.timeout(3.0)
            store.put("late")

        sim.spawn(getter())
        sim.spawn(putter())
        sim.run()
        assert results == [("late", 3.0)]

    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        for item in (1, 2, 3):
            store.put(item)
        received = []

        def getter():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        sim.spawn(getter())
        sim.run()
        assert received == [1, 2, 3]

    def test_try_get(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() == (False, None)
        store.put(7)
        assert store.try_get() == (True, 7)
        assert len(store) == 0


class TestPriorityStore:
    def test_smallest_first(self):
        sim = Simulator()
        store = PriorityStore(sim)
        for priority in (5, 1, 3):
            store.put(f"item{priority}", priority=priority)
        received = []

        def getter():
            for _ in range(3):
                item = yield store.get()
                received.append(item)

        sim.spawn(getter())
        sim.run()
        assert received == ["item1", "item3", "item5"]

    def test_blocking_get(self):
        sim = Simulator()
        store = PriorityStore(sim)
        received = []

        def getter():
            item = yield store.get()
            received.append((item, sim.now))

        def putter():
            yield sim.timeout(2.0)
            store.put("a", priority=0)

        sim.spawn(getter())
        sim.spawn(putter())
        sim.run()
        assert received == [("a", 2.0)]
