"""The seed x config determinism matrix.

Three layers of replay guarantee, strongest first:

1. **Golden digests** — every invariant-checked cell of the
   ranks x streams x faults matrix must reproduce the event-sequence
   digest pinned in ``golden_digests.json``.  This is cross-*commit*
   determinism: a hot-path rewrite that shifts one event time or name by
   one ulp fails here.  Regenerate only after an intentional, reviewed
   behaviour change (``tools/capture_golden_digests.py``).
2. **Replay stability** — running the same cell twice in one process
   yields the same digest (cross-*run* determinism; catches leaked
   global state, id()-ordered iteration, allocation-history effects).
3. **Seed sensitivity** — different seeds yield *different* digests, so
   the digest provably covers the seed-dependent inputs rather than
   hashing a constant.

With invariants off there is no digest; those cells assert the
simulated iteration times instead, which also proves the invariant
checker itself never perturbs simulated time.
"""

import json
import pathlib

import pytest

from repro.harness.determinism import (
    diagnosis_probe,
    diagnosis_probe_key,
    probe_key,
    run_probe,
)

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_digests.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

GOLDEN_FINDINGS_PATH = pathlib.Path(__file__).parent / \
    "golden_findings.json"
GOLDEN_FINDINGS = json.loads(GOLDEN_FINDINGS_PATH.read_text())

DIAGNOSIS_MATRIX = [
    {"straggler_rank": None, "straggler_factor": 3.0, "seed": 0},
    {"straggler_rank": 2, "straggler_factor": 3.0, "seed": 0},
]


def diagnosis_cell_id(cell):
    return diagnosis_probe_key(**cell)

MATRIX = [
    {"ranks": ranks, "streams": streams, "faults": faults}
    for ranks in (2, 8, 32)
    for streams in (1, 4)
    for faults in (False, True)
] + [
    # Planner-backend cell: the in-network-aggregation schedule runs
    # through the fluid network's multi-phase planned path, so its event
    # schedule gets the same cross-commit pin as the legacy algorithms.
    {"ranks": 8, "streams": 4, "faults": False, "algorithm": "ina"},
    # Large-scale cell: pins the vectorized-hot-state tier (array-backed
    # flow table, pooled wakeup events) at 1024 ranks.  Symmetric, so it
    # runs in representative mode — cheap enough for the matrix while
    # still covering the 128-node schedule's event stream.
    {"ranks": 1024, "streams": 4, "faults": False},
]


def cell_id(cell):
    return probe_key(cell["ranks"], cell["streams"], cell["faults"],
                     True, 0, cell.get("algorithm", "ring"))


class TestGoldenDigests:
    @pytest.mark.parametrize("cell", MATRIX, ids=cell_id)
    def test_digest_matches_golden(self, cell):
        golden = GOLDEN[cell_id(cell)]
        probe = run_probe(**cell, invariants=True, seed=0)
        assert probe.digest == golden["digest"], (
            f"{cell_id(cell)}: event schedule diverged from the pinned "
            f"golden digest — if this change is intentional, regenerate "
            f"with tools/capture_golden_digests.py"
        )
        assert list(probe.iteration_times_s) == golden["iteration_times_s"]

    def test_golden_file_covers_whole_matrix(self):
        assert sorted(GOLDEN) == sorted(cell_id(cell) for cell in MATRIX)


class TestReplayStability:
    @pytest.mark.parametrize("cell", MATRIX, ids=cell_id)
    def test_same_cell_twice_same_digest(self, cell):
        first = run_probe(**cell, invariants=True, seed=0)
        second = run_probe(**cell, invariants=True, seed=0)
        assert first.digest == second.digest
        assert first.iteration_times_s == second.iteration_times_s

    @pytest.mark.parametrize(
        "cell", [c for c in MATRIX if c["streams"] == 4], ids=cell_id)
    def test_invariants_off_same_times(self, cell):
        # No digest without the checker, but simulated time must be
        # bit-identical — i.e. observing a run never alters it.
        golden = GOLDEN[cell_id(cell)]
        probe = run_probe(**cell, invariants=False, seed=0)
        assert probe.digest is None
        assert list(probe.iteration_times_s) == golden["iteration_times_s"]


class TestSeedSensitivity:
    @pytest.mark.parametrize("faults", [False, True],
                             ids=["clean", "faults"])
    def test_different_seed_different_digest(self, faults):
        base = run_probe(8, 4, faults=faults, invariants=True, seed=0)
        other = run_probe(8, 4, faults=faults, invariants=True, seed=3)
        assert base.digest != other.digest

    def test_seed_zero_matches_golden(self):
        # seed=0 is documented to be byte-identical to the unseeded run,
        # which is what the golden file pins.
        probe = run_probe(8, 4, faults=False, invariants=True, seed=0)
        assert probe.digest == GOLDEN["r8-s4-nofaults-inv-seed0"]["digest"]


class TestDiagnosisDigests:
    """The diagnosis layer gets the same cross-commit pin as the sim.

    A detector-threshold tweak, finding-field rename or sort-order
    change must fail here; regenerate the golden file only after an
    intentional change (``tools/capture_golden_findings.py``).
    """

    @pytest.mark.parametrize("cell", DIAGNOSIS_MATRIX,
                             ids=diagnosis_cell_id)
    def test_findings_digest_matches_golden(self, cell):
        golden = GOLDEN_FINDINGS[diagnosis_cell_id(cell)]
        probe = diagnosis_probe(**cell)
        assert probe.findings == golden["findings"]
        assert probe.findings_digest == golden["findings_digest"], (
            f"{diagnosis_cell_id(cell)}: findings diverged from the "
            f"pinned golden digest — if this change is intentional, "
            f"regenerate with tools/capture_golden_findings.py"
        )

    @pytest.mark.parametrize("cell", DIAGNOSIS_MATRIX,
                             ids=diagnosis_cell_id)
    def test_same_cell_twice_same_digest(self, cell):
        first = diagnosis_probe(**cell)
        second = diagnosis_probe(**cell)
        assert first.findings_digest == second.findings_digest

    def test_clean_cell_is_empty(self):
        # The clean cell's golden digest IS the empty-findings digest:
        # a healthy run must stay finding-free.
        probe = diagnosis_probe()
        assert probe.findings == 0

    def test_golden_file_covers_diagnosis_matrix(self):
        assert sorted(GOLDEN_FINDINGS) == sorted(
            diagnosis_cell_id(cell) for cell in DIAGNOSIS_MATRIX)
