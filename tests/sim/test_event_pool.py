"""Regression tests for the kernel's recycled-event pool.

The fluid network schedules one completion wakeup per rate reallocation
and recycles the objects through :meth:`Simulator.pooled_event` /
:meth:`Simulator.release_event`.  The dangerous corner is a released
event whose *stale heap entry* has not popped yet (superseded or
cancelled allocations): reusing such an object would let the stale pop
trigger the recycled event — a double-fire with somebody else's value.
These tests pin the guards that make reuse safe, including under
fault-injected flow cancellation.
"""

import pytest

from repro.sim import FluidNetwork, Link, Simulator


class TestPoolMechanics:
    def test_pooled_event_is_recycled_with_fresh_state(self):
        sim = Simulator()
        event = sim.pooled_event("first")
        sim._schedule_at(1.0, event, "payload")
        sim.run()
        assert event.value == "payload"
        sim.release_event(event)
        recycled = sim.pooled_event("second")
        assert recycled is event
        assert recycled.name == "second"
        assert not recycled.triggered
        assert recycled.callbacks == []

    def test_release_refused_while_heap_entry_pending(self):
        # The satellite-4 fix: a cancellation path may try to return a
        # wakeup whose heap entry has not popped; pooling it would let
        # the stale pop trigger the recycled object.
        sim = Simulator()
        event = sim.pooled_event("wakeup")
        sim._schedule_at(1.0, event, None)
        sim.release_event(event)
        assert sim.pooled_event("other") is not event  # not pooled
        sim.run()  # the stale entry pops and triggers it exactly once
        assert event.triggered
        sim.release_event(event)  # now safe
        assert sim.pooled_event("again") is event

    def test_double_release_is_idempotent(self):
        sim = Simulator()
        event = sim.pooled_event("once")
        sim._schedule_at(0.5, event, None)
        sim.run()
        sim.release_event(event)
        sim.release_event(event)
        assert len(sim._event_pool) == 1

    def test_reused_event_fires_exactly_once(self):
        sim = Simulator()
        fired = []
        event = sim.pooled_event("gen1")
        event.add_callback(lambda ev: fired.append(("gen1", ev.value)))
        sim._schedule_at(1.0, event, 1)
        sim.run()
        sim.release_event(event)
        again = sim.pooled_event("gen2")
        assert again is event
        again.add_callback(lambda ev: fired.append(("gen2", ev.value)))
        sim._schedule_at(2.0, again, 2)
        sim.run()
        assert fired == [("gen1", 1), ("gen2", 2)]


class TestNetworkWakeupRecycling:
    def test_superseded_wakeups_die_then_recycle(self):
        # Every new allocation supersedes the previous wakeup; the stale
        # entries must pop harmlessly (token mismatch) and the objects
        # must land back in the pool exactly once each.
        sim = Simulator()
        net = FluidNetwork(sim)
        links = [Link(f"l{i}", 1e9) for i in range(4)]
        done = [net.start_flow([link], 1e6) for link in links]
        sim.run(until=sim.all_of(done))
        assert sim.queue_length == 0
        pool = sim._event_pool
        assert pool  # wakeups were recycled
        assert len({id(event) for event in pool}) == len(pool)

    def test_cancelled_flow_does_not_resurrect_stale_wakeup(self):
        # Fault-injected cancellation: the cancelled allocation's wakeup
        # is still in the heap when the survivors re-allocate.  The
        # survivors' completion must be exact and nothing may double
        # fire (a resurrected wakeup would advance progress at a stale
        # rate or trip the already-triggered guard).
        sim = Simulator()
        net = FluidNetwork(sim)
        link = Link("l", 1e9)
        victim = net.start_flow([link], 1e6)
        survivor = net.start_flow([link], 1e6)  # both share the 1 Gb/s link

        def interrupt():
            yield sim.timeout(0.004)
            assert net.cancel_flow(victim)
            assert not net.cancel_flow(victim)  # double cancel: no-op

        sim.spawn(interrupt())
        sim.run(until=survivor)
        # 4ms at half rate (2e6 bits sent) + remaining 6e6 bits at full.
        assert sim.now == pytest.approx(0.004 + 6e6 / 1e9)
        assert not victim.triggered  # hung collective: never fires
        sim.run()
        assert sim.queue_length == 0
        pool = sim._event_pool
        assert len({id(event) for event in pool}) == len(pool)

    def test_cancellation_replay_is_deterministic(self):
        def run_once():
            sim = Simulator(check_invariants=True)
            net = FluidNetwork(sim)
            links = [Link(f"l{i}", 1e9) for i in range(3)]
            flows = [net.start_flow([link], 5e5) for link in links]
            extra = net.start_flow(list(links), 2e5)

            def interrupt():
                yield sim.timeout(0.001)
                assert net.cancel_flow(flows[1])

            sim.spawn(interrupt())
            sim.run(until=sim.all_of([flows[0], flows[2], extra]))
            sim.run()
            return sim.state_digest(), sim.now

        assert run_once() == run_once()
