"""Tests for the fluid network model: fair sharing and per-stream caps."""

import pytest

from repro.errors import NetworkError
from repro.sim import FluidNetwork, Link, Simulator


def make_net(capacity_bps=1e9, latency_s=0.0):
    sim = Simulator()
    net = FluidNetwork(sim)
    link = Link("l0", capacity_bps, latency_s)
    return sim, net, link


class TestLinkValidation:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(NetworkError):
            Link("bad", 0.0)

    def test_rejects_negative_latency(self):
        with pytest.raises(NetworkError):
            Link("bad", 1e9, latency_s=-1)


class TestSingleFlow:
    def test_uncapped_flow_uses_full_link(self):
        sim, net, link = make_net(capacity_bps=8e9)
        done = net.start_flow([link], size_bytes=1e9)  # 8e9 bits
        sim.run(until=done)
        assert sim.now == pytest.approx(1.0)

    def test_capped_flow_limited_to_cap(self):
        sim, net, link = make_net(capacity_bps=8e9)
        done = net.start_flow([link], size_bytes=1e9, rate_cap_bps=2e9)
        sim.run(until=done)
        assert sim.now == pytest.approx(4.0)

    def test_latency_added_to_completion(self):
        sim, net, link = make_net(capacity_bps=8e9, latency_s=0.5)
        done = net.start_flow([link], size_bytes=1e9)
        sim.run(until=done)
        assert sim.now == pytest.approx(1.5)

    def test_zero_size_flow_is_pure_latency(self):
        sim, net, link = make_net(latency_s=0.25)
        done = net.start_flow([link], size_bytes=0)
        sim.run(until=done)
        assert sim.now == pytest.approx(0.25)

    def test_extra_delay(self):
        sim, net, link = make_net(capacity_bps=8e9)
        done = net.start_flow([link], size_bytes=1e9, extra_delay_s=0.3)
        sim.run(until=done)
        assert sim.now == pytest.approx(1.3)

    def test_flow_requires_links(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        with pytest.raises(NetworkError):
            net.start_flow([], size_bytes=100)


class TestFairSharing:
    def test_two_equal_flows_split_link(self):
        sim, net, link = make_net(capacity_bps=8e9)
        d1 = net.start_flow([link], size_bytes=1e9)
        d2 = net.start_flow([link], size_bytes=1e9)
        sim.run(until=sim.all_of([d1, d2]))
        # Each gets 4 Gbps -> 2 seconds for 8 Gbit.
        assert sim.now == pytest.approx(2.0)

    def test_short_flow_finishes_and_releases_bandwidth(self):
        sim, net, link = make_net(capacity_bps=8e9)
        long = net.start_flow([link], size_bytes=1e9)     # 8 Gbit
        short = net.start_flow([link], size_bytes=0.25e9)  # 2 Gbit
        sim.run(until=short)
        # Short flow at 4 Gbps finishes its 2 Gbit in 0.5 s.
        assert sim.now == pytest.approx(0.5)
        sim.run(until=long)
        # Long flow: 2 Gbit done at 0.5s, remaining 6 Gbit at 8 Gbps = 0.75 s.
        assert sim.now == pytest.approx(1.25)

    def test_late_arrival_reallocates(self):
        sim, net, link = make_net(capacity_bps=8e9)
        first = net.start_flow([link], size_bytes=1e9)

        def late_starter():
            yield sim.timeout(0.5)
            done = net.start_flow([link], size_bytes=1e9)
            yield done
            return sim.now

        proc = sim.spawn(late_starter())
        sim.run()
        # First: 4 Gbit in 0.5 s alone, then shares; both need 4 and 8 Gbit.
        # At 4 Gbps each: first done at 0.5 + 1.0 = 1.5, then second alone:
        # 8 - 4 = 4 Gbit sent by 1.5s, remaining 4 Gbit at 8 Gbps = 0.5s.
        assert first.triggered
        assert proc.value == pytest.approx(2.0)

    def test_caps_leave_bandwidth_unused(self):
        # Two flows capped at 30% each can only reach 60% utilisation:
        # the single-TCP-stream effect from the paper.
        sim, net, link = make_net(capacity_bps=10e9)
        cap = 3e9
        d1 = net.start_flow([link], size_bytes=1e9, rate_cap_bps=cap)
        d2 = net.start_flow([link], size_bytes=1e9, rate_cap_bps=cap)
        assert net.utilization_of(link) == pytest.approx(0.6)
        sim.run(until=sim.all_of([d1, d2]))
        assert sim.now == pytest.approx(8e9 / 3e9)

    def test_many_capped_flows_saturate_link(self):
        sim, net, link = make_net(capacity_bps=10e9)
        flows = [net.start_flow([link], size_bytes=1e9, rate_cap_bps=3e9)
                 for _ in range(5)]
        # 5 * 3 Gbps > 10 Gbps: fair share 2 Gbps each, fully utilised.
        assert net.utilization_of(link) == pytest.approx(1.0)
        sim.run(until=sim.all_of(flows))
        assert sim.now == pytest.approx(8e9 / 2e9)

    def test_multi_link_flow_bottlenecked_by_slowest(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        fast = Link("fast", 10e9)
        slow = Link("slow", 2e9)
        done = net.start_flow([fast, slow], size_bytes=1e9)
        sim.run(until=done)
        assert sim.now == pytest.approx(4.0)

    def test_cross_traffic_on_shared_link(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        a = Link("a", 10e9)
        shared = Link("shared", 10e9)
        b = Link("b", 10e9)
        f1 = net.start_flow([a, shared], size_bytes=1e9)
        f2 = net.start_flow([b, shared], size_bytes=1e9)
        sim.run(until=sim.all_of([f1, f2]))
        # Both share the middle link at 5 Gbps.
        assert sim.now == pytest.approx(8e9 / 5e9)

    def test_heterogeneous_caps(self):
        sim, net, link = make_net(capacity_bps=10e9)
        capped = net.start_flow([link], size_bytes=1e9, rate_cap_bps=1e9)
        free = net.start_flow([link], size_bytes=1e9)
        # Capped flow pinned at 1 Gbps; free flow gets the remaining 9 Gbps.
        assert net.utilization_of(link) == pytest.approx(1.0)
        sim.run(until=free)
        assert sim.now == pytest.approx(8e9 / 9e9)
        sim.run(until=capped)
        assert sim.now == pytest.approx(8.0)


class TestAccounting:
    def test_bits_delivered(self):
        sim, net, link = make_net(capacity_bps=8e9)
        done = net.start_flow([link], size_bytes=1e9)
        sim.run(until=done)
        assert net.bits_delivered == pytest.approx(8e9)

    def test_flow_duration_reported(self):
        sim, net, link = make_net(capacity_bps=8e9)
        done = net.start_flow([link], size_bytes=1e9)
        sim.run(until=done)
        assert done.value == pytest.approx(1.0)


class TestDynamicCapacity:
    """Mid-run link capacity changes ('network ... can vary during
    runtime', paper §I)."""

    def test_capacity_drop_slows_flow(self):
        sim, net, link = make_net(capacity_bps=8e9)
        done = net.start_flow([link], size_bytes=1e9)  # 8 Gbit

        def degrade():
            yield sim.timeout(0.5)  # 4 Gbit sent
            net.set_link_capacity(link, 2e9)

        sim.spawn(degrade())
        sim.run(until=done)
        # Remaining 4 Gbit at 2 Gbps = 2 s after the drop.
        assert sim.now == pytest.approx(2.5)

    def test_capacity_raise_speeds_flow(self):
        sim, net, link = make_net(capacity_bps=2e9)
        done = net.start_flow([link], size_bytes=1e9)

        def upgrade():
            yield sim.timeout(1.0)  # 2 Gbit sent
            net.set_link_capacity(link, 6e9)

        sim.spawn(upgrade())
        sim.run(until=done)
        assert sim.now == pytest.approx(2.0)

    def test_flap_cycle(self):
        sim, net, link = make_net(capacity_bps=8e9)
        done = net.start_flow([link], size_bytes=2e9)  # 16 Gbit

        def flapper():
            yield sim.timeout(0.5)   # 4 Gbit
            net.set_link_capacity(link, 1e9)
            yield sim.timeout(1.0)   # +1 Gbit
            net.set_link_capacity(link, 8e9)

        sim.spawn(flapper())
        sim.run(until=done)
        # 16 = 4 + 1 + 11 -> 0.5 + 1.0 + 11/8.
        assert sim.now == pytest.approx(0.5 + 1.0 + 11 / 8)

    def test_invalid_capacity_rejected(self):
        sim, net, link = make_net()
        with pytest.raises(NetworkError):
            net.set_link_capacity(link, 0)

    def test_caps_still_respected_after_raise(self):
        sim, net, link = make_net(capacity_bps=2e9)
        done = net.start_flow([link], size_bytes=1e9, rate_cap_bps=1e9)
        net.set_link_capacity(link, 100e9)
        sim.run(until=done)
        assert sim.now == pytest.approx(8.0)
