"""Unit tests for the fault-injection subsystem (`repro.sim.faults`)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FaultInjectionError, ProcessInterrupt
from repro.sim.faults import (
    DEAD_LINK_BPS,
    MEMBERSHIP_FAULTS,
    BandwidthDegradation,
    FaultInjector,
    FaultPlan,
    LinkFlap,
    NodeCrash,
    NodeJoin,
    NodeLeave,
    Straggler,
)
from repro.sim.kernel import Simulator
from repro.sim.network import FluidNetwork
from repro.sim.topology import Cluster, NodeSpec
from repro.sim.tracing import Trace


def make_cluster(sim, num_nodes=4):
    return Cluster(sim, num_nodes, NodeSpec(gpus_per_node=2))


class TestFaultPlan:
    def test_plan_sorts_by_time(self):
        plan = FaultPlan([NodeCrash(at_s=5.0, node=0),
                          NodeCrash(at_s=1.0, node=1)])
        assert [f.at_s for f in plan] == [1.0, 5.0]
        assert plan.crash_count == 2
        assert len(plan) == 2

    def test_validation_rejects_bad_values(self):
        with pytest.raises(FaultInjectionError):
            NodeCrash(at_s=-1.0, node=0)
        with pytest.raises(FaultInjectionError):
            LinkFlap(at_s=0.0, node=0, down_s=0.0)
        with pytest.raises(FaultInjectionError):
            BandwidthDegradation(at_s=0.0, node=0, fraction=1.5)
        with pytest.raises(FaultInjectionError):
            Straggler(at_s=0.0, node=0, slowdown=0.5)

    def test_validate_for_checks_node_range(self):
        sim = Simulator()
        cluster = make_cluster(sim, num_nodes=2)
        plan = FaultPlan([NodeCrash(at_s=1.0, node=7)])
        with pytest.raises(FaultInjectionError):
            plan.validate_for(cluster)

    def test_poisson_is_deterministic_and_bounded(self):
        a = FaultPlan.poisson(mtbf_s=5.0, horizon_s=50.0, num_nodes=4,
                              seed=3)
        b = FaultPlan.poisson(mtbf_s=5.0, horizon_s=50.0, num_nodes=4,
                              seed=3)
        assert [f.at_s for f in a] == [f.at_s for f in b]
        assert all(0 <= f.at_s < 50.0 for f in a)
        # Crashes target distinct nodes.
        victims = [f.node for f in a if isinstance(f, NodeCrash)]
        assert len(victims) == len(set(victims)) <= 4

    def test_poisson_mixed_kinds(self):
        plan = FaultPlan.poisson(
            mtbf_s=2.0, horizon_s=40.0, num_nodes=4, seed=1,
            kinds=(NodeCrash, LinkFlap, BandwidthDegradation, Straggler))
        kinds = {type(f) for f in plan}
        assert len(kinds) >= 2  # the draw mixes fault types


class TestFaultPlanHardening:
    """Validation hardening: fractions, window overlap, target bounds."""

    def test_degradation_fraction_bounds(self):
        # 1.0 is a valid (no-op) degradation; the bound is (0, 1].
        BandwidthDegradation(at_s=0.0, node=0, fraction=1.0)
        for bad in (0.0, -0.5, 1.0001, 2.0):
            with pytest.raises(FaultInjectionError, match=r"\(0, 1\]"):
                BandwidthDegradation(at_s=0.0, node=0, fraction=bad)

    def test_overlapping_flap_windows_on_same_node_rejected(self):
        plan = FaultPlan([LinkFlap(at_s=1.0, node=0, down_s=2.0),
                          LinkFlap(at_s=2.0, node=0, down_s=1.0)])
        with pytest.raises(FaultInjectionError, match="overlaps"):
            plan.membership_bounds(2)

    def test_overlap_across_window_kinds_rejected(self):
        # The injector's capacity save/restore does not nest, so a
        # straggler window inside a degradation window is just as
        # broken as two overlapping flaps.
        plan = FaultPlan([
            BandwidthDegradation(at_s=0.5, node=1, fraction=0.5,
                                 duration_s=4.0),
            Straggler(at_s=2.0, node=1, slowdown=3.0, duration_s=1.0)])
        with pytest.raises(FaultInjectionError, match="overlaps"):
            plan.membership_bounds(2)

    def test_back_to_back_and_cross_node_windows_are_valid(self):
        plan = FaultPlan([
            LinkFlap(at_s=1.0, node=0, down_s=1.0),
            LinkFlap(at_s=2.0, node=0, down_s=1.0),  # starts as prior ends
            Straggler(at_s=1.5, node=1, slowdown=2.0, duration_s=5.0)])
        assert plan.membership_bounds(2) == (2, 2)

    def test_validate_for_rejects_overlap(self):
        sim = Simulator()
        cluster = make_cluster(sim, num_nodes=2)
        plan = FaultPlan([LinkFlap(at_s=0.0, node=0, down_s=3.0),
                          LinkFlap(at_s=1.0, node=0, down_s=1.0)])
        with pytest.raises(FaultInjectionError, match="overlaps"):
            plan.validate_for(cluster)

    def test_link_fault_target_outside_bounds_rejected(self):
        plan = FaultPlan([LinkFlap(at_s=0.0, node=9, down_s=1.0)])
        with pytest.raises(FaultInjectionError, match="knows nodes"):
            plan.membership_bounds(2)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_poisson_windowed_plans_never_overlap(self, seed):
        plan = FaultPlan.poisson(
            mtbf_s=0.5, horizon_s=30.0, num_nodes=3, seed=seed,
            kinds=(LinkFlap, BandwidthDegradation, Straggler))
        plan.membership_bounds(3)  # includes the overlap check

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_chaos_windowed_plans_never_overlap(self, seed):
        plan = FaultPlan.chaos(seed=seed, num_nodes=4, horizon_s=40.0,
                               mtbf_s=0.8)
        plan.membership_bounds(4)  # includes the overlap check


class TestFaultInjectorCrash:
    def test_crash_squashes_links_and_marks_node(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        injector.arm(FaultPlan([NodeCrash(at_s=2.0, node=1)]))
        sim.run()
        assert cluster.failed_nodes == {1}
        assert cluster.alive_nodes == [0, 2, 3]
        assert cluster.alive_world_size == 6
        assert cluster.nic_out[1].capacity_bps == DEAD_LINK_BPS
        assert cluster.nic_in[1].capacity_bps == DEAD_LINK_BPS
        assert cluster.nvlink[1].capacity_bps == DEAD_LINK_BPS
        assert injector.take_pending_dead() == [1]
        assert injector.take_pending_dead() == []  # drained
        assert injector.crash_times[1] == pytest.approx(2.0)

    def test_crash_stalls_inflight_flow(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        # A transfer that would finish quickly on a healthy link.
        flow = network.start_flow([cluster.nic_out[1]], size_bytes=1e9)
        injector.arm(FaultPlan([NodeCrash(at_s=0.01, node=1)]))
        sim.run(until=sim.timeout(60.0))
        assert not flow.triggered  # stalled, not completed

    def test_crash_interrupts_registered_victims(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        causes = []

        def worker(sim):
            try:
                yield sim.timeout(100.0)
            except ProcessInterrupt as exc:
                causes.append(exc.cause)

        proc = sim.spawn(worker(sim))
        injector.register_victim(1, proc)
        injector.arm(FaultPlan([NodeCrash(at_s=3.0, node=1)]))
        sim.run(until=proc)
        assert len(causes) == 1
        assert isinstance(causes[0], NodeCrash)
        assert sim.now == pytest.approx(3.0)

    def test_trace_records_injection(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        trace = Trace(enabled=True, keep_spans=True)
        injector = FaultInjector(sim, cluster, FluidNetwork(sim),
                                 trace=trace)
        injector.arm(FaultPlan([NodeCrash(at_s=1.0, node=0)]))
        sim.run()
        assert trace.counters["aiacc.faults.inject"] == 1
        assert any(name == "aiacc.fault.inject"
                   for name, _, _ in trace.points)


class TestTransientFaults:
    def test_link_flap_goes_down_and_recovers(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        healthy = cluster.nic_out[2].capacity_bps
        injector.arm(FaultPlan([LinkFlap(at_s=1.0, node=2, down_s=2.0)]))
        sim.run(until=sim.timeout(1.5))
        assert cluster.nic_out[2].capacity_bps == DEAD_LINK_BPS
        sim.run()
        assert cluster.nic_out[2].capacity_bps == pytest.approx(healthy)
        assert not cluster.failed_nodes  # flaps are not crashes

    def test_degradation_scales_and_restores(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        healthy = cluster.nic_out[0].capacity_bps
        injector.arm(FaultPlan([BandwidthDegradation(
            at_s=1.0, node=0, fraction=0.25, duration_s=3.0)]))
        sim.run(until=sim.timeout(2.0))
        assert cluster.nic_out[0].capacity_bps == \
            pytest.approx(healthy * 0.25)
        sim.run()
        assert cluster.nic_out[0].capacity_bps == pytest.approx(healthy)

    def test_straggler_slows_transfers(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        healthy = cluster.nic_out[3].capacity_bps
        injector.arm(FaultPlan([Straggler(at_s=0.5, node=3, slowdown=4.0,
                                          duration_s=1.0)]))
        sim.run(until=sim.timeout(1.0))
        assert cluster.nic_out[3].capacity_bps == \
            pytest.approx(healthy / 4.0)
        sim.run()
        assert cluster.nic_out[3].capacity_bps == pytest.approx(healthy)

    def test_crash_during_flap_window_stays_down(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        injector.arm(FaultPlan([
            LinkFlap(at_s=1.0, node=1, down_s=5.0),
            NodeCrash(at_s=2.0, node=1),
        ]))
        sim.run()
        # The flap's restore must not resurrect a dead node's NIC.
        assert cluster.nic_out[1].capacity_bps == DEAD_LINK_BPS
        assert cluster.failed_nodes == {1}


class TestRetarget:
    def test_retarget_remaps_original_node_ids(self):
        sim = Simulator()
        cluster = make_cluster(sim, num_nodes=4)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        injector.arm(FaultPlan([
            NodeCrash(at_s=1.0, node=1),
            NodeCrash(at_s=10.0, node=3),
        ]))
        sim.run(until=sim.timeout(2.0))
        assert injector.take_pending_dead() == [1]
        # Rebuild over survivors {0, 2, 3} -> new indices {0, 1, 2}.
        new_cluster = make_cluster(sim, num_nodes=3)
        new_network = FluidNetwork(sim)
        injector.retarget(new_cluster, new_network)
        sim.run()
        # Original node 3 is index 2 in the rebuilt cluster.
        assert new_cluster.failed_nodes == {2}
        assert new_cluster.nic_out[2].capacity_bps == DEAD_LINK_BPS
        assert injector.take_pending_dead() == [3]

    def test_retarget_rejects_wrong_size(self):
        sim = Simulator()
        cluster = make_cluster(sim, num_nodes=4)
        injector = FaultInjector(sim, cluster, FluidNetwork(sim))
        injector.apply(NodeCrash(at_s=0.0, node=0))
        with pytest.raises(FaultInjectionError):
            injector.retarget(make_cluster(sim, num_nodes=4),
                              FluidNetwork(sim))

    def test_fault_on_already_crashed_node_is_noop(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        injector = FaultInjector(sim, cluster, FluidNetwork(sim))
        injector.apply(NodeCrash(at_s=0.0, node=2))
        injector.apply(NodeCrash(at_s=0.0, node=2))  # idempotent
        assert injector.take_pending_dead() == [2]


class TestMembershipPlanValidation:
    def test_leave_out_of_range_rejected(self):
        plan = FaultPlan([NodeLeave(at_s=1.0, node=7)])
        with pytest.raises(FaultInjectionError, match="not a member"):
            plan.membership_bounds(2)

    def test_schedule_draining_the_group_rejected(self):
        plan = FaultPlan([NodeLeave(at_s=1.0, node=0),
                          NodeCrash(at_s=2.0, node=1)])
        with pytest.raises(FaultInjectionError, match="below one worker"):
            plan.membership_bounds(2)

    def test_join_of_current_member_rejected(self):
        plan = FaultPlan([NodeJoin(at_s=1.0, node=1)])
        with pytest.raises(FaultInjectionError, match="already a member"):
            plan.membership_bounds(2)

    def test_leave_then_rejoin_of_same_identity_is_valid(self):
        plan = FaultPlan([NodeLeave(at_s=1.0, node=1),
                          NodeJoin(at_s=2.0, node=1),
                          NodeLeave(at_s=3.0, node=1)])
        assert plan.membership_bounds(2) == (1, 1)
        assert plan.membership_event_count == 3

    def test_membership_tracked_in_schedule_order(self):
        # A leave that is only legal because an earlier join grew the
        # group: validation must walk the implied membership over time.
        plan = FaultPlan([NodeJoin(at_s=0.5, node=1),
                          NodeLeave(at_s=0.6, node=0)])
        assert plan.membership_bounds(1) == (1, 1)
        # The reverse order (leave first) would drain the group.
        with pytest.raises(FaultInjectionError):
            FaultPlan([NodeLeave(at_s=0.4, node=0),
                       NodeJoin(at_s=0.5, node=1)]).membership_bounds(1)

    def test_link_fault_on_unknown_identity_rejected(self):
        plan = FaultPlan([Straggler(at_s=1.0, node=9, slowdown=2.0)])
        with pytest.raises(FaultInjectionError, match="only ever knows"):
            plan.membership_bounds(2)
        # ... but a *former* member is fine (the fault is a runtime no-op).
        plan = FaultPlan([NodeLeave(at_s=1.0, node=1),
                          LinkFlap(at_s=2.0, node=1)])
        plan.membership_bounds(2)

    def test_validate_for_covers_membership_events(self):
        sim = Simulator()
        cluster = make_cluster(sim, num_nodes=2)
        with pytest.raises(FaultInjectionError):
            FaultPlan([NodeLeave(at_s=1.0, node=5)]).validate_for(cluster)


class TestChaosPlans:
    def test_chaos_is_deterministic(self):
        a = FaultPlan.chaos(seed=7, num_nodes=4, horizon_s=10.0)
        b = FaultPlan.chaos(seed=7, num_nodes=4, horizon_s=10.0)
        assert a.faults == b.faults

    def test_chaos_mixes_membership_and_link_faults(self):
        plan = FaultPlan.chaos(seed=3, num_nodes=4, horizon_s=60.0,
                               mtbf_s=1.0)
        kinds = {type(f) for f in plan}
        assert any(k in kinds for k in MEMBERSHIP_FAULTS)
        assert plan.membership_event_count <= len(plan)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000),
           num_nodes=st.integers(1, 6),
           min_nodes=st.integers(1, 3),
           max_extra=st.integers(0, 3))
    def test_chaos_plans_always_validate(self, seed, num_nodes,
                                         min_nodes, max_extra):
        # Every drawn schedule must pass the same up-front validation
        # the recovery driver applies, and respect the membership floor.
        min_nodes = min(min_nodes, num_nodes)
        plan = FaultPlan.chaos(seed=seed, num_nodes=num_nodes,
                               horizon_s=30.0, mtbf_s=2.0,
                               min_nodes=min_nodes,
                               max_extra_nodes=max_extra)
        minimum, final = plan.membership_bounds(num_nodes)
        assert minimum >= min_nodes
        assert final <= num_nodes + max_extra


class TestMembershipInjector:
    def test_leave_is_announced_not_applied(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        healthy = cluster.nic_out[1].capacity_bps
        injector.arm(FaultPlan([NodeLeave(at_s=1.0, node=1)]))
        sim.run()
        # Unlike a crash, the node stays healthy until the boundary.
        assert cluster.failed_nodes == set()
        assert cluster.nic_out[1].capacity_bps == pytest.approx(healthy)
        assert injector.leave_times[1] == pytest.approx(1.0)
        assert injector.take_pending_leaves() == [1]
        assert injector.take_pending_leaves() == []  # drained

    def test_duplicate_announcements_dedup(self):
        sim = Simulator()
        injector = FaultInjector(sim, make_cluster(sim), FluidNetwork(sim))
        injector.apply(NodeLeave(at_s=0.0, node=2))
        injector.apply(NodeLeave(at_s=0.0, node=2))
        assert injector.take_pending_leaves() == [2]
        injector.apply(NodeJoin(at_s=0.0, node=9))
        injector.apply(NodeJoin(at_s=0.0, node=9))
        assert injector.take_pending_joins() == [9]

    def test_join_of_live_member_is_noop(self):
        sim = Simulator()
        injector = FaultInjector(sim, make_cluster(sim), FluidNetwork(sim))
        injector.apply(NodeJoin(at_s=0.0, node=1))
        assert injector.take_pending_joins() == []

    def test_depart_then_admit_roundtrip(self):
        sim = Simulator()
        injector = FaultInjector(sim, make_cluster(sim, num_nodes=4),
                                 FluidNetwork(sim))
        injector.depart([1, 3])
        assert injector.membership == (0, 2)
        injector.retarget(make_cluster(sim, num_nodes=2),
                          FluidNetwork(sim))
        injector.admit([3])
        # Joiners append after the survivors, preserving indices.
        assert injector.membership == (0, 2, 3)
        injector.retarget(make_cluster(sim, num_nodes=3),
                          FluidNetwork(sim))

    def test_depart_rejects_non_member_and_crashed(self):
        sim = Simulator()
        injector = FaultInjector(sim, make_cluster(sim), FluidNetwork(sim))
        with pytest.raises(FaultInjectionError, match="not a current"):
            injector.depart([9])
        injector.apply(NodeCrash(at_s=0.0, node=2))
        with pytest.raises(FaultInjectionError, match="recovery path"):
            injector.depart([2])

    def test_admit_rejects_current_member(self):
        sim = Simulator()
        injector = FaultInjector(sim, make_cluster(sim), FluidNetwork(sim))
        with pytest.raises(FaultInjectionError, match="already a member"):
            injector.admit([0])

    def test_crash_between_announce_and_boundary_drops_leave(self):
        # The node announced a clean departure but died before the
        # boundary: the crash-recovery path owns it, the leave is void.
        sim = Simulator()
        injector = FaultInjector(sim, make_cluster(sim), FluidNetwork(sim))
        injector.apply(NodeLeave(at_s=0.0, node=1))
        injector.apply(NodeCrash(at_s=0.0, node=1))
        assert injector.take_pending_leaves() == []
        assert injector.take_pending_dead() == [1]

    def test_rejoin_after_crash_clears_bookkeeping(self):
        sim = Simulator()
        cluster = make_cluster(sim, num_nodes=4)
        injector = FaultInjector(sim, cluster, FluidNetwork(sim))
        injector.apply(NodeCrash(at_s=0.0, node=1))
        assert injector.take_pending_dead() == [1]
        injector.retarget(make_cluster(sim, num_nodes=3),
                          FluidNetwork(sim))
        assert injector.membership == (0, 2, 3)
        # The same identity rejoins at a later epoch.
        injector.apply(NodeJoin(at_s=0.0, node=1))
        assert injector.take_pending_joins() == [1]
        injector.admit([1])
        assert injector.membership == (0, 2, 3, 1)
        rebuilt = make_cluster(sim, num_nodes=4)
        injector.retarget(rebuilt, FluidNetwork(sim))
        # The rejoined node is healthy: a fresh crash for it re-applies.
        injector.apply(NodeCrash(at_s=0.0, node=1))
        assert rebuilt.failed_nodes == {3}  # node 1 sits at index 3 now
        assert injector.take_pending_dead() == [1]

    def test_requeue_puts_events_back_at_front(self):
        sim = Simulator()
        injector = FaultInjector(sim, make_cluster(sim, num_nodes=4),
                                 FluidNetwork(sim))
        injector.apply(NodeLeave(at_s=0.0, node=3))
        injector.requeue_leaves([1, 2])
        assert injector.take_pending_leaves() == [1, 2, 3]
        injector.apply(NodeJoin(at_s=0.0, node=8))
        injector.requeue_joins([8, 9])  # 8 already queued: dedup
        assert injector.take_pending_joins() == [9, 8]

    def test_has_pending_dead_tracks_unconsumed_crashes(self):
        sim = Simulator()
        injector = FaultInjector(sim, make_cluster(sim), FluidNetwork(sim))
        assert not injector.has_pending_dead
        injector.apply(NodeCrash(at_s=0.0, node=0))
        assert injector.has_pending_dead
        injector.take_pending_dead()
        assert not injector.has_pending_dead
