"""Unit tests for the fault-injection subsystem (`repro.sim.faults`)."""

import pytest

from repro.errors import FaultInjectionError, ProcessInterrupt
from repro.sim.faults import (
    DEAD_LINK_BPS,
    BandwidthDegradation,
    FaultInjector,
    FaultPlan,
    LinkFlap,
    NodeCrash,
    Straggler,
)
from repro.sim.kernel import Simulator
from repro.sim.network import FluidNetwork
from repro.sim.topology import Cluster, NodeSpec
from repro.sim.tracing import Trace


def make_cluster(sim, num_nodes=4):
    return Cluster(sim, num_nodes, NodeSpec(gpus_per_node=2))


class TestFaultPlan:
    def test_plan_sorts_by_time(self):
        plan = FaultPlan([NodeCrash(at_s=5.0, node=0),
                          NodeCrash(at_s=1.0, node=1)])
        assert [f.at_s for f in plan] == [1.0, 5.0]
        assert plan.crash_count == 2
        assert len(plan) == 2

    def test_validation_rejects_bad_values(self):
        with pytest.raises(FaultInjectionError):
            NodeCrash(at_s=-1.0, node=0)
        with pytest.raises(FaultInjectionError):
            LinkFlap(at_s=0.0, node=0, down_s=0.0)
        with pytest.raises(FaultInjectionError):
            BandwidthDegradation(at_s=0.0, node=0, fraction=1.5)
        with pytest.raises(FaultInjectionError):
            Straggler(at_s=0.0, node=0, slowdown=0.5)

    def test_validate_for_checks_node_range(self):
        sim = Simulator()
        cluster = make_cluster(sim, num_nodes=2)
        plan = FaultPlan([NodeCrash(at_s=1.0, node=7)])
        with pytest.raises(FaultInjectionError):
            plan.validate_for(cluster)

    def test_poisson_is_deterministic_and_bounded(self):
        a = FaultPlan.poisson(mtbf_s=5.0, horizon_s=50.0, num_nodes=4,
                              seed=3)
        b = FaultPlan.poisson(mtbf_s=5.0, horizon_s=50.0, num_nodes=4,
                              seed=3)
        assert [f.at_s for f in a] == [f.at_s for f in b]
        assert all(0 <= f.at_s < 50.0 for f in a)
        # Crashes target distinct nodes.
        victims = [f.node for f in a if isinstance(f, NodeCrash)]
        assert len(victims) == len(set(victims)) <= 4

    def test_poisson_mixed_kinds(self):
        plan = FaultPlan.poisson(
            mtbf_s=2.0, horizon_s=40.0, num_nodes=4, seed=1,
            kinds=(NodeCrash, LinkFlap, BandwidthDegradation, Straggler))
        kinds = {type(f) for f in plan}
        assert len(kinds) >= 2  # the draw mixes fault types


class TestFaultInjectorCrash:
    def test_crash_squashes_links_and_marks_node(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        injector.arm(FaultPlan([NodeCrash(at_s=2.0, node=1)]))
        sim.run()
        assert cluster.failed_nodes == {1}
        assert cluster.alive_nodes == [0, 2, 3]
        assert cluster.alive_world_size == 6
        assert cluster.nic_out[1].capacity_bps == DEAD_LINK_BPS
        assert cluster.nic_in[1].capacity_bps == DEAD_LINK_BPS
        assert cluster.nvlink[1].capacity_bps == DEAD_LINK_BPS
        assert injector.take_pending_dead() == [1]
        assert injector.take_pending_dead() == []  # drained
        assert injector.crash_times[1] == pytest.approx(2.0)

    def test_crash_stalls_inflight_flow(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        # A transfer that would finish quickly on a healthy link.
        flow = network.start_flow([cluster.nic_out[1]], size_bytes=1e9)
        injector.arm(FaultPlan([NodeCrash(at_s=0.01, node=1)]))
        sim.run(until=sim.timeout(60.0))
        assert not flow.triggered  # stalled, not completed

    def test_crash_interrupts_registered_victims(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        causes = []

        def worker(sim):
            try:
                yield sim.timeout(100.0)
            except ProcessInterrupt as exc:
                causes.append(exc.cause)

        proc = sim.spawn(worker(sim))
        injector.register_victim(1, proc)
        injector.arm(FaultPlan([NodeCrash(at_s=3.0, node=1)]))
        sim.run(until=proc)
        assert len(causes) == 1
        assert isinstance(causes[0], NodeCrash)
        assert sim.now == pytest.approx(3.0)

    def test_trace_records_injection(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        trace = Trace(enabled=True, keep_spans=True)
        injector = FaultInjector(sim, cluster, FluidNetwork(sim),
                                 trace=trace)
        injector.arm(FaultPlan([NodeCrash(at_s=1.0, node=0)]))
        sim.run()
        assert trace.counters["aiacc.faults.inject"] == 1
        assert any(name == "aiacc.fault.inject"
                   for name, _, _ in trace.points)


class TestTransientFaults:
    def test_link_flap_goes_down_and_recovers(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        healthy = cluster.nic_out[2].capacity_bps
        injector.arm(FaultPlan([LinkFlap(at_s=1.0, node=2, down_s=2.0)]))
        sim.run(until=sim.timeout(1.5))
        assert cluster.nic_out[2].capacity_bps == DEAD_LINK_BPS
        sim.run()
        assert cluster.nic_out[2].capacity_bps == pytest.approx(healthy)
        assert not cluster.failed_nodes  # flaps are not crashes

    def test_degradation_scales_and_restores(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        healthy = cluster.nic_out[0].capacity_bps
        injector.arm(FaultPlan([BandwidthDegradation(
            at_s=1.0, node=0, fraction=0.25, duration_s=3.0)]))
        sim.run(until=sim.timeout(2.0))
        assert cluster.nic_out[0].capacity_bps == \
            pytest.approx(healthy * 0.25)
        sim.run()
        assert cluster.nic_out[0].capacity_bps == pytest.approx(healthy)

    def test_straggler_slows_transfers(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        healthy = cluster.nic_out[3].capacity_bps
        injector.arm(FaultPlan([Straggler(at_s=0.5, node=3, slowdown=4.0,
                                          duration_s=1.0)]))
        sim.run(until=sim.timeout(1.0))
        assert cluster.nic_out[3].capacity_bps == \
            pytest.approx(healthy / 4.0)
        sim.run()
        assert cluster.nic_out[3].capacity_bps == pytest.approx(healthy)

    def test_crash_during_flap_window_stays_down(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        injector.arm(FaultPlan([
            LinkFlap(at_s=1.0, node=1, down_s=5.0),
            NodeCrash(at_s=2.0, node=1),
        ]))
        sim.run()
        # The flap's restore must not resurrect a dead node's NIC.
        assert cluster.nic_out[1].capacity_bps == DEAD_LINK_BPS
        assert cluster.failed_nodes == {1}


class TestRetarget:
    def test_retarget_remaps_original_node_ids(self):
        sim = Simulator()
        cluster = make_cluster(sim, num_nodes=4)
        network = FluidNetwork(sim)
        injector = FaultInjector(sim, cluster, network)
        injector.arm(FaultPlan([
            NodeCrash(at_s=1.0, node=1),
            NodeCrash(at_s=10.0, node=3),
        ]))
        sim.run(until=sim.timeout(2.0))
        assert injector.take_pending_dead() == [1]
        # Rebuild over survivors {0, 2, 3} -> new indices {0, 1, 2}.
        new_cluster = make_cluster(sim, num_nodes=3)
        new_network = FluidNetwork(sim)
        injector.retarget(new_cluster, new_network)
        sim.run()
        # Original node 3 is index 2 in the rebuilt cluster.
        assert new_cluster.failed_nodes == {2}
        assert new_cluster.nic_out[2].capacity_bps == DEAD_LINK_BPS
        assert injector.take_pending_dead() == [3]

    def test_retarget_rejects_wrong_size(self):
        sim = Simulator()
        cluster = make_cluster(sim, num_nodes=4)
        injector = FaultInjector(sim, cluster, FluidNetwork(sim))
        injector.apply(NodeCrash(at_s=0.0, node=0))
        with pytest.raises(FaultInjectionError):
            injector.retarget(make_cluster(sim, num_nodes=4),
                              FluidNetwork(sim))

    def test_fault_on_already_crashed_node_is_noop(self):
        sim = Simulator()
        cluster = make_cluster(sim)
        injector = FaultInjector(sim, cluster, FluidNetwork(sim))
        injector.apply(NodeCrash(at_s=0.0, node=2))
        injector.apply(NodeCrash(at_s=0.0, node=2))  # idempotent
        assert injector.take_pending_dead() == [2]
