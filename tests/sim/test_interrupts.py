"""Interrupt-delivery semantics (ISSUE satellite: interrupt coverage).

`ProcessInterrupt` delivered to a waiting / timed-out / resource-holding
process must propagate its cause, release (or withdraw) held resource
slots, and leave the simulator consistent.
"""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource, Store


class TestInterruptCause:
    def test_cause_propagates_to_yield_point(self):
        sim = Simulator()
        seen = []

        def victim(sim):
            try:
                yield sim.timeout(10.0)
            except ProcessInterrupt as exc:
                seen.append(exc.cause)
            return "survived"

        proc = sim.spawn(victim(sim))

        def attacker(sim):
            yield sim.timeout(1.0)
            proc.interrupt("node 3 died")

        sim.spawn(attacker(sim))
        sim.run(until=proc)
        assert seen == ["node 3 died"]
        assert proc.ok and proc.value == "survived"
        assert sim.now == pytest.approx(1.0)

    def test_uncaught_interrupt_fails_watched_process(self):
        sim = Simulator()

        def victim(sim):
            yield sim.timeout(10.0)

        proc = sim.spawn(victim(sim))
        proc.add_callback(lambda _ev: None)

        def attacker(sim):
            yield sim.timeout(1.0)
            proc.interrupt("gone")

        sim.spawn(attacker(sim))
        sim.run(until=proc)
        assert not proc.ok
        assert isinstance(proc.value, ProcessInterrupt)
        assert proc.value.cause == "gone"

    def test_interrupting_finished_process_is_error(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(0.1)

        proc = sim.spawn(quick(sim))
        sim.run()
        assert not proc.can_interrupt
        with pytest.raises(SimulationError):
            proc.interrupt("too late")

    def test_deferred_delivery_via_simulator_interrupt(self):
        sim = Simulator()
        seen = []

        def victim(sim):
            try:
                yield sim.timeout(10.0)
            except ProcessInterrupt as exc:
                seen.append(exc.cause)

        proc = sim.spawn(victim(sim))
        sim.interrupt(proc, cause="crash", delay=2.0)
        sim.run(until=proc)
        assert seen == ["crash"]
        assert sim.now == pytest.approx(2.0)

    def test_deferred_delivery_expires_if_victim_finished(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(0.5)
            return "done"

        proc = sim.spawn(quick(sim))
        # Delivery lands after the victim exits; it must be a no-op, not
        # a SimulationError out of the event loop.
        sim.interrupt(proc, cause="crash", delay=5.0)
        sim.run()
        assert proc.ok and proc.value == "done"

    def test_interrupted_process_can_rewait_on_same_event(self):
        sim = Simulator()
        slow = None

        def victim(sim):
            nonlocal slow
            slow = sim.timeout(10.0, value="finally")
            try:
                value = yield slow
            except ProcessInterrupt:
                value = yield slow  # the event stays pending; re-wait
            return value

        proc = sim.spawn(victim(sim))
        sim.interrupt(proc, delay=1.0)
        sim.run(until=proc)
        assert proc.value == "finally"
        assert sim.now == pytest.approx(10.0)


class TestResourceReleaseOnInterrupt:
    def test_holder_releases_slots_via_try_finally(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder(sim):
            yield res.acquire()
            try:
                yield sim.timeout(100.0)
            except ProcessInterrupt:
                pass
            finally:
                res.release()

        proc = sim.spawn(holder(sim))
        sim.interrupt(proc, delay=1.0)
        sim.run()
        assert res.in_use == 0
        assert res.available == 1

    def test_cancel_withdraws_queued_acquire(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder(sim):
            yield res.acquire()
            yield sim.timeout(5.0)
            res.release()

        def waiter(sim):
            request = res.acquire()
            try:
                yield request
            except ProcessInterrupt:
                assert res.cancel(request) is True
                return "withdrew"

        sim.spawn(holder(sim))
        wproc = sim.spawn(waiter(sim))
        sim.interrupt(wproc, delay=1.0)
        sim.run()
        # The withdrawn request must not consume the slot when the
        # holder releases it.
        assert res.in_use == 0
        assert wproc.value == "withdrew"

    def test_cancel_returns_false_after_grant(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)

        def holder(sim):
            request = res.acquire()
            yield request
            assert res.cancel(request) is False  # already granted
            res.release()

        proc = sim.spawn(holder(sim))
        sim.run(until=proc)
        assert res.in_use == 0

    def test_cancel_of_head_waiter_wakes_the_next(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        granted = []

        assert res.try_acquire(1)  # 1 of 2 slots taken
        big = res.acquire(2)       # queued: needs both slots
        small = res.acquire(1)     # queued behind big (strict FIFO)
        small.add_callback(lambda _ev: granted.append("small"))
        sim.run()
        assert granted == []
        # Withdrawing the oversized head request must unblock the small
        # one immediately.
        assert res.cancel(big) is True
        sim.run()
        assert granted == ["small"]
        assert res.in_use == 2

    def test_store_cancel_withdraws_pending_getter(self):
        sim = Simulator()
        store = Store(sim)
        request = store.get()
        assert store.cancel(request) is True
        store.put("item")
        sim.run()
        # The cancelled getter never received the item.
        assert not request.triggered
        assert len(store) == 1

    def test_store_cancel_false_after_delivery(self):
        sim = Simulator()
        store = Store(sim)
        store.put("item")
        request = store.get()
        assert store.cancel(request) is False
        sim.run()
        assert request.value == "item"


class TestSimulatorConsistencyAfterInterrupt:
    def test_clock_and_queue_remain_usable(self):
        sim = Simulator()

        def victim(sim):
            try:
                yield sim.timeout(50.0)
            except ProcessInterrupt:
                pass
            yield sim.timeout(1.0)
            return sim.now

        proc = sim.spawn(victim(sim))
        sim.interrupt(proc, delay=2.0)
        sim.run(until=proc)
        assert proc.value == pytest.approx(3.0)
        # The abandoned 50s timeout still drains without error.
        sim.run()
        assert sim.queue_length == 0

    def test_interrupt_during_timed_out_wait(self):
        """Interrupt arriving exactly while a process re-arms a wait."""
        sim = Simulator()
        attempts = []

        def retrier(sim):
            for attempt in range(3):
                try:
                    yield sim.timeout(1.0)
                    attempts.append(attempt)
                except ProcessInterrupt:
                    attempts.append("interrupted")
            return attempts

        proc = sim.spawn(retrier(sim))
        sim.interrupt(proc, delay=1.5)
        sim.run(until=proc)
        assert attempts == [0, "interrupted", 2]
