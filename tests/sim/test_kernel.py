"""Tests for the discrete-event kernel, events and processes."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []
    sim.timeout(2.5).add_callback(lambda ev: fired.append(sim.now))
    sim.run()
    assert fired == [2.5]
    assert sim.now == 2.5


def test_timeout_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.timeout(delay, value=delay).add_callback(
            lambda ev: order.append(ev.value))
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_ties_broken_by_insertion_order():
    sim = Simulator()
    order = []
    for label in "abc":
        sim.timeout(1.0, value=label).add_callback(
            lambda ev: order.append(ev.value))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_value_before_trigger_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_run_until_time():
    sim = Simulator()
    fired = []
    sim.timeout(1.0).add_callback(lambda ev: fired.append(1))
    sim.timeout(5.0).add_callback(lambda ev: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0


def test_run_until_event():
    sim = Simulator()
    target = sim.timeout(3.0)
    sim.timeout(10.0)
    sim.run(until=target)
    assert sim.now == 3.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_step_on_empty_queue_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_all_of_collects_values():
    sim = Simulator()
    combined = sim.all_of([sim.timeout(1, value="a"), sim.timeout(2, value="b")])
    sim.run()
    assert combined.value == ["a", "b"]
    assert sim.now == 2


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    combined = sim.all_of([])
    assert combined.triggered
    assert combined.value == []


def test_any_of_returns_first():
    sim = Simulator()
    first = sim.any_of([sim.timeout(5, value="slow"), sim.timeout(1, value="fast")])
    sim.run(until=first)
    assert first.value == (1, "fast")


def test_any_of_requires_events():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.any_of([])


class TestProcesses:
    def test_return_value(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)
            return "done"

        proc = sim.spawn(worker())
        sim.run()
        assert proc.value == "done"
        assert not proc.alive

    def test_yield_receives_event_value(self):
        sim = Simulator()
        seen = []

        def worker():
            value = yield sim.timeout(1.0, value=42)
            seen.append(value)

        sim.spawn(worker())
        sim.run()
        assert seen == [42]

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return sim.now

        proc = sim.spawn(worker())
        sim.run()
        assert proc.value == 3.0

    def test_process_joins_process(self):
        sim = Simulator()

        def child():
            yield sim.timeout(2.0)
            return "child-result"

        def parent():
            result = yield sim.spawn(child())
            return result

        proc = sim.spawn(parent())
        sim.run()
        assert proc.value == "child-result"

    def test_failed_event_raises_inside_process(self):
        sim = Simulator()

        def worker():
            event = sim.event()
            sim.timeout(1.0).add_callback(
                lambda ev: event.fail(RuntimeError("boom")))
            try:
                yield event
            except RuntimeError as exc:
                return f"caught {exc}"

        proc = sim.spawn(worker())
        sim.run()
        assert proc.value == "caught boom"

    def test_unhandled_crash_propagates_when_unobserved(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)
            raise ValueError("unobserved crash")

        sim.spawn(worker())
        with pytest.raises(ValueError):
            sim.run()

    def test_observed_crash_fails_the_process_event(self):
        sim = Simulator()

        def child():
            yield sim.timeout(1.0)
            raise ValueError("observed crash")

        def parent():
            try:
                yield sim.spawn(child())
            except ValueError:
                return "handled"

        proc = sim.spawn(parent())
        sim.run()
        assert proc.value == "handled"

    def test_yielding_non_event_fails_process(self):
        sim = Simulator()

        def parent():
            def bad():
                yield 123

            try:
                yield sim.spawn(bad())
            except SimulationError:
                return "rejected"

        proc = sim.spawn(parent())
        sim.run()
        assert proc.value == "rejected"

    def test_interrupt_thrown_at_yield_point(self):
        sim = Simulator()

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except ProcessInterrupt as interrupt:
                return interrupt.cause

        proc = sim.spawn(sleeper())

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt(cause="node-failure")

        sim.spawn(interrupter())
        sim.run(until=proc)
        assert proc.value == "node-failure"
        assert sim.now == 1.0

    def test_interrupt_finished_process_raises(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(0.1)

        proc = sim.spawn(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_spawn_requires_generator(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.spawn(lambda: None)

    def test_spawn_order_does_not_skew_time(self):
        sim = Simulator()
        starts = []

        def worker(label):
            starts.append((label, sim.now))
            yield sim.timeout(1.0)

        sim.spawn(worker("a"))
        sim.spawn(worker("b"))
        sim.run()
        assert starts == [("a", 0.0), ("b", 0.0)]
