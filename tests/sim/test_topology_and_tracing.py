"""Tests for topology features (core oversubscription) and trace export."""

import json

import pytest

from repro.collectives import TimedCollectives
from repro.errors import TopologyError
from repro.sim import FluidNetwork, Simulator, Trace, alibaba_v100_cluster
from repro.sim.topology import Cluster, NodeSpec


class TestClusterBasics:
    def test_world_size_and_rank_math(self):
        sim = Simulator()
        cluster = alibaba_v100_cluster(sim, 32)
        assert cluster.world_size == 32
        assert cluster.num_nodes == 4
        assert cluster.node_of(17) == 2
        assert cluster.local_rank(17) == 1

    def test_rank_out_of_range(self):
        sim = Simulator()
        cluster = alibaba_v100_cluster(sim, 8)
        with pytest.raises(TopologyError):
            cluster.node_of(8)

    def test_partial_node_allowed_below_eight(self):
        sim = Simulator()
        cluster = alibaba_v100_cluster(sim, 4)
        assert cluster.world_size == 4
        assert cluster.num_nodes == 1

    def test_indivisible_gpu_count_rejected(self):
        sim = Simulator()
        with pytest.raises(TopologyError):
            alibaba_v100_cluster(sim, 12)

    def test_path_between_same_node_uses_nvlink(self):
        sim = Simulator()
        cluster = alibaba_v100_cluster(sim, 16)
        path = cluster.path_between(0, 3)
        assert path == [cluster.nvlink[0]]

    def test_path_between_nodes_uses_nics(self):
        sim = Simulator()
        cluster = alibaba_v100_cluster(sim, 16)
        path = cluster.path_between(0, 9)
        assert path == [cluster.nic_out[0], cluster.nic_in[1]]

    def test_topology_graph_shape(self):
        sim = Simulator()
        cluster = alibaba_v100_cluster(sim, 32)
        graph = cluster.topology_graph()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 6  # complete graph K4


class TestOversubscription:
    def test_core_link_created(self):
        sim = Simulator()
        cluster = Cluster(sim, 8, NodeSpec(), core_oversubscription=4.0)
        assert cluster.core is not None
        assert not cluster.is_symmetric
        # Core capacity = m * NIC_effective / factor.
        expected = 8 * 0.96 * 30e9 / 4.0
        assert cluster.core.capacity_bps == pytest.approx(expected)

    def test_nonblocking_has_no_core(self):
        sim = Simulator()
        cluster = Cluster(sim, 8, NodeSpec())
        assert cluster.core is None
        assert cluster.is_symmetric

    def test_core_in_inter_node_paths(self):
        sim = Simulator()
        cluster = Cluster(sim, 4, NodeSpec(), core_oversubscription=2.0)
        path = cluster.path_between(0, 9)
        assert cluster.core in path

    def test_oversubscription_slows_concurrent_allreduces(self):
        def run(factor):
            sim = Simulator()
            net = FluidNetwork(sim)
            cluster = Cluster(sim, 8, NodeSpec(),
                              core_oversubscription=factor)
            timed = TimedCollectives(sim, net, cluster)
            events = [timed.allreduce(20e6) for _ in range(8)]
            sim.run(until=sim.all_of(events))
            return sim.now

        assert run(4.0) > 2.5 * run(1.0)

    def test_invalid_factor_rejected(self):
        sim = Simulator()
        with pytest.raises(TopologyError):
            Cluster(sim, 4, NodeSpec(), core_oversubscription=0.5)


class TestChromeTraceExport:
    def test_spans_become_complete_events(self):
        trace = Trace(enabled=True, keep_spans=True)
        trace.add_span("allreduce", 1.0, 1.5, bytes=100)
        trace.add_span("compute", 0.0, 1.0)
        trace.point("failure", 0.7, node=3)
        events = trace.to_chrome_trace()
        assert len(events) == 3
        assert events[0]["ts"] <= events[1]["ts"] <= events[2]["ts"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"allreduce", "compute"}
        allreduce = next(e for e in complete if e["name"] == "allreduce")
        assert allreduce["ts"] == pytest.approx(1e6)
        assert allreduce["dur"] == pytest.approx(0.5e6)

    def test_output_is_json_serializable(self):
        trace = Trace(enabled=True, keep_spans=True)
        trace.add_span("x", 0.0, 1.0, meta_obj=object())
        json.dumps(trace.to_chrome_trace())  # repr() makes it safe

    def test_requires_keep_spans(self):
        trace = Trace(enabled=True, keep_spans=False)
        with pytest.raises(ValueError):
            trace.to_chrome_trace()

    def test_busy_fraction(self):
        trace = Trace(enabled=True)
        trace.add_span("comm", 0.0, 2.0)
        trace.add_span("comm", 3.0, 4.0)
        assert trace.busy_fraction("comm", 10.0) == pytest.approx(0.3)

    def test_disabled_trace_is_noop(self):
        trace = Trace(enabled=False)
        trace.add_span("x", 0.0, 1.0)
        trace.incr("c")
        assert not trace.busy_time
        assert not trace.counters

    def test_invalid_span_rejected(self):
        trace = Trace(enabled=True)
        with pytest.raises(ValueError):
            trace.add_span("x", 2.0, 1.0)

    def test_track_mapping_is_deterministic(self):
        # pid from rank metadata; tid = 1 + stream for stream-bound
        # spans; other activities get sorted-name lane tids — no
        # hash() anywhere, so the layout survives PYTHONHASHSEED.
        trace = Trace(enabled=True, keep_spans=True)
        trace.add_span("unit", 0.0, 1.0, rank=2, stream=3)
        trace.add_span("compute", 0.0, 1.0, rank=2)
        trace.add_span("allreduce", 0.5, 1.5, rank=1)
        events = {e["name"]: e for e in trace.to_chrome_trace()}
        assert events["unit"]["pid"] == 2
        assert events["unit"]["tid"] == 4
        # lane tids: sorted({"allreduce", "compute"}) -> 64, 65
        assert events["allreduce"]["pid"] == 1
        assert events["allreduce"]["tid"] == 64
        assert events["compute"]["tid"] == 65

    def test_same_activity_shares_one_track(self):
        trace = Trace(enabled=True, keep_spans=True)
        trace.add_span("allreduce", 0.0, 1.0)
        trace.add_span("allreduce", 2.0, 3.0)
        tids = {e["tid"] for e in trace.to_chrome_trace()}
        assert len(tids) == 1


class TestTraceMerge:
    def test_merge_respects_destination_retention(self):
        # Folding a span-keeping trace into an aggregate-only one must
        # not smuggle spans past the destination's keep_spans=False.
        src = Trace(enabled=True, keep_spans=True)
        src.add_span("x", 0.0, 1.0)
        src.point("p", 0.5)
        dst = Trace(enabled=True, keep_spans=False)
        dst.merge(src)
        assert not dst.spans
        assert not dst.points
        assert dst.busy_time["x"] == pytest.approx(1.0)

    def test_merge_into_keeping_trace_copies_spans(self):
        src = Trace(enabled=True, keep_spans=True)
        src.add_span("x", 0.0, 1.0)
        src.point("p", 0.5)
        src.incr("c", 2.0)
        dst = Trace(enabled=True, keep_spans=True)
        dst.merge(src)
        assert len(dst.spans) == 1
        assert len(dst.points) == 1
        assert dst.counters["c"] == 2.0
