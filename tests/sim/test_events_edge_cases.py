"""Edge-case tests for events: failure propagation, composition."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestFailurePropagation:
    def test_all_of_fails_on_first_child_failure(self):
        sim = Simulator()
        good = sim.timeout(5.0)
        bad = sim.event()
        combined = sim.all_of([good, bad])

        def failer():
            yield sim.timeout(1.0)
            bad.fail(RuntimeError("child failed"))

        sim.spawn(failer())
        sim.run(until=combined)
        assert combined.triggered
        assert not combined.ok
        assert isinstance(combined.value, RuntimeError)

    def test_all_of_value_order_matches_input(self):
        sim = Simulator()
        slow = sim.timeout(2.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        combined = sim.all_of([slow, fast])
        sim.run()
        assert combined.value == ["slow", "fast"]

    def test_any_of_failure_of_first_child_propagates(self):
        sim = Simulator()
        never = sim.event()
        bad = sim.event()
        first = sim.any_of([never, bad])

        def failer():
            yield sim.timeout(1.0)
            bad.fail(ValueError("boom"))

        sim.spawn(failer())
        sim.run(until=first)
        assert not first.ok

    def test_any_of_ignores_later_children(self):
        sim = Simulator()
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(2.0, value="slow")
        first = sim.any_of([fast, slow])
        sim.run()
        assert first.value == (0, "fast")

    def test_callback_after_trigger_fires_immediately(self):
        sim = Simulator()
        event = sim.timeout(1.0, value=7)
        sim.run()
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        assert seen == [7]

    def test_nested_all_of(self):
        sim = Simulator()
        inner = sim.all_of([sim.timeout(1, value=1), sim.timeout(2, value=2)])
        outer = sim.all_of([inner, sim.timeout(3, value=3)])
        sim.run()
        assert outer.value == [[1, 2], 3]


class TestProcessEdgeCases:
    def test_process_waiting_on_already_triggered_event(self):
        sim = Simulator()
        event = sim.timeout(0.5, value="early")
        sim.run()

        def late_waiter():
            value = yield event
            return value

        proc = sim.spawn(late_waiter())
        sim.run()
        assert proc.value == "early"

    def test_two_processes_wait_on_same_event(self):
        sim = Simulator()
        shared = sim.timeout(1.0, value="shared")
        results = []

        def waiter(label):
            value = yield shared
            results.append((label, value))

        sim.spawn(waiter("a"))
        sim.spawn(waiter("b"))
        sim.run()
        assert sorted(results) == [("a", "shared"), ("b", "shared")]

    def test_immediate_return_process(self):
        sim = Simulator()

        def instant():
            return "done"
            yield  # pragma: no cover

        proc = sim.spawn(instant())
        sim.run()
        assert proc.value == "done"

    def test_deep_process_chain(self):
        sim = Simulator()

        def chain(depth):
            if depth == 0:
                return 0
                yield  # pragma: no cover
            sub = yield sim.spawn(chain(depth - 1))
            return sub + 1

        proc = sim.spawn(chain(50))
        sim.run()
        assert proc.value == 50

    def test_queue_length_reporting(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.timeout(2.0)
        assert sim.queue_length == 2
        sim.run()
        assert sim.queue_length == 0

    def test_event_from_other_simulator_rejected(self):
        sim_a = Simulator()
        sim_b = Simulator()
        foreign = sim_b.timeout(1.0)

        def parent():
            def bad():
                yield foreign

            try:
                yield sim_a.spawn(bad())
            except SimulationError:
                return "rejected"

        proc = sim_a.spawn(parent())
        sim_a.run()
        assert proc.value == "rejected"
