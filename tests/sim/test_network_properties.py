"""Property-based tests for the fluid network model.

Invariants checked over randomly generated flow/link configurations:

1. **capacity** — the instantaneous sum of flow rates on any link never
   exceeds its capacity;
2. **caps** — no flow ever exceeds its per-stream rate cap;
3. **completion** — every flow eventually completes, and its measured
   duration is at least ``bytes / min(link capacity, cap)`` (no flow can
   beat physics) and at most ``bytes / (capacity / k)`` for ``k``
   concurrent flows (max-min fairness guarantees a fair share);
4. **work conservation** — a single uncapped flow on an idle link runs
   at full capacity;
5. **incremental = oracle** — at every audited instant the incremental
   (dirty-component) solver's cached rates equal what the from-scratch
   :func:`~repro.sim.network.solve_rates_reference` solver would assign
   to the same flow set, including under weights, caps, arrivals,
   departures and mid-run capacity changes;
6. **batching** — inserting a set of same-instant flows through
   ``start_flows`` yields bit-identical completion times to inserting
   them one ``start_flow`` at a time;
7. **weights** — a ``weight=k`` bundle of total size ``S`` completes at
   the same time as ``k`` parallel identical flows of size ``S/k``.
"""

import contextlib
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.network as network_mod
from repro.sim import FluidNetwork, Link, Simulator
from repro.sim.network import GroupFlow, solve_rates_reference


@contextlib.contextmanager
def vector_threshold(value):
    """Temporarily override the vector-solver component-size gate.

    Forcing it to 2 routes even tiny components through
    ``_solve_component_vector``, so the differential tests exercise the
    array water-fill on every randomly generated component shape instead
    of only on >= 24-flow ones.
    """
    previous = network_mod.VECTOR_SOLVE_MIN_FLOWS
    network_mod.VECTOR_SOLVE_MIN_FLOWS = value
    try:
        yield
    finally:
        network_mod.VECTOR_SOLVE_MIN_FLOWS = previous


@st.composite
def flow_scenarios(draw):
    num_links = draw(st.integers(1, 3))
    capacities = [draw(st.floats(1e8, 1e10)) for _ in range(num_links)]
    num_flows = draw(st.integers(1, 6))
    flows = []
    for _ in range(num_flows):
        links = sorted(draw(st.sets(st.integers(0, num_links - 1),
                                    min_size=1, max_size=num_links)))
        size = draw(st.floats(1e3, 1e7))
        capped = draw(st.booleans())
        cap = draw(st.floats(1e7, 2e9)) if capped else None
        start = draw(st.floats(0, 0.5))
        flows.append((links, size, cap, start))
    return capacities, flows


class TestNetworkInvariants:
    @settings(max_examples=60, deadline=None)
    @given(scenario=flow_scenarios())
    def test_rates_and_completion(self, scenario):
        capacities, flow_specs = scenario
        sim = Simulator()
        net = FluidNetwork(sim)
        links = [Link(f"l{i}", capacity)
                 for i, capacity in enumerate(capacities)]
        events = []

        def starter(spec):
            link_ids, size, cap, start = spec

            def process():
                yield sim.timeout(start)
                done = net.start_flow([links[i] for i in link_ids], size,
                                      rate_cap_bps=cap)
                events.append((done, size, cap, link_ids))
                yield done

            return process()

        processes = [sim.spawn(starter(spec)) for spec in flow_specs]

        # Audit rates whenever the allocation might change.
        violations = []

        def audit():
            while True:
                for link in links:
                    used = sum(f.rate_bps for f in link.flows)
                    if used > link.capacity_bps * (1 + 1e-6):
                        violations.append((link.name, used))
                for link in links:
                    for flow in link.flows:
                        if flow.rate_cap_bps is not None and \
                                flow.rate_bps > flow.rate_cap_bps * (1 + 1e-6):
                            violations.append(("cap", flow.rate_bps))
                yield sim.timeout(0.01)

        auditor = sim.spawn(audit())
        sim.run(until=sim.all_of(processes))
        assert not violations

        # Every flow completed, and durations respect physics.
        for done, size, cap, link_ids in events:
            assert done.triggered
            duration = done.value
            best_rate = min(capacities[i] for i in link_ids)
            if cap is not None:
                best_rate = min(best_rate, cap)
            floor = size * 8.0 / best_rate
            assert duration >= floor * (1 - 1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        capacity=st.floats(1e8, 1e10),
        size=st.floats(1e3, 1e8),
    )
    def test_single_flow_work_conserving(self, capacity, size):
        sim = Simulator()
        net = FluidNetwork(sim)
        link = Link("l", capacity)
        done = net.start_flow([link], size)
        sim.run(until=done)
        assert sim.now == pytest.approx(size * 8.0 / capacity, rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        k=st.integers(2, 8),
        size=st.floats(1e4, 1e7),
    )
    def test_equal_flows_fair_share(self, k, size):
        # k identical uncapped flows on one link each get capacity/k and
        # all finish simultaneously at k x the solo duration.
        capacity = 1e9
        sim = Simulator()
        net = FluidNetwork(sim)
        link = Link("l", capacity)
        flows = [net.start_flow([link], size) for _ in range(k)]
        sim.run(until=sim.all_of(flows))
        assert sim.now == pytest.approx(k * size * 8.0 / capacity,
                                        rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        k=st.integers(1, 6),
        weight=st.integers(1, 8),
        capped=st.booleans(),
    )
    def test_weighted_capacity_invariant(self, k, weight, capped):
        # k weight-`weight` bundles sharing a link: the summed bundle
        # rates never exceed capacity, and a capped bundle never exceeds
        # cap x weight (the cap is per stream).
        capacity = 1e9
        cap = capacity / (k * weight * 2) if capped else None
        sim = Simulator()
        net = FluidNetwork(sim)
        link = Link("l", capacity)
        done = [net.start_flow([link], 1e5, rate_cap_bps=cap, weight=weight)
                for _ in range(k)]
        used = sum(f.rate_bps for f in link.flows)
        assert used <= capacity * (1 + 1e-6)
        for flow in link.flows:
            if cap is not None:
                assert flow.rate_bps <= cap * weight * (1 + 1e-6)
        sim.run(until=sim.all_of(done))
        assert not link.flows

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_bytes_conserved(self, seed):
        rng = np.random.default_rng(seed)
        sim = Simulator()
        net = FluidNetwork(sim)
        link = Link("l", 1e9)
        sizes = rng.uniform(1e3, 1e6, size=rng.integers(1, 6))
        flows = [net.start_flow([link], float(s)) for s in sizes]
        sim.run(until=sim.all_of(flows))
        assert net.bits_delivered == pytest.approx(float(sizes.sum()) * 8,
                                                   rel=1e-9)


@st.composite
def weighted_scenarios(draw):
    """Random multi-link workloads with weights, caps and arrival times."""
    num_links = draw(st.integers(1, 4))
    capacities = [draw(st.floats(1e8, 1e10)) for _ in range(num_links)]
    num_flows = draw(st.integers(1, 8))
    flows = []
    for _ in range(num_flows):
        links = sorted(draw(st.sets(st.integers(0, num_links - 1),
                                    min_size=1, max_size=num_links)))
        size = draw(st.floats(1e3, 1e7))
        cap = draw(st.floats(1e7, 2e9)) if draw(st.booleans()) else None
        weight = draw(st.integers(1, 4))
        start = draw(st.floats(0, 0.3))
        flows.append((links, size, cap, weight, start))
    return capacities, flows


class TestIncrementalSolverEquivalence:
    """The dirty-component solver must agree with the from-scratch oracle.

    ``solve_rates_reference`` is the pre-incremental global algorithm,
    kept verbatim as the test oracle.  The incremental solver caches
    rates across events and only re-solves dirtied components, so any
    bug in dirty-link tracking, component expansion or cached state
    shows up here as a stale (wrong) rate.
    """

    #: Near-ties *across* independent components may be resolved within
    #: the solver's 1e-9 water-filling tolerance differently by the two
    #: algorithms; anything beyond that is a genuine divergence.
    REL_TOL = 1e-7

    @settings(max_examples=50, deadline=None)
    @given(scenario=weighted_scenarios())
    def test_rates_match_reference_oracle(self, scenario):
        capacities, flow_specs = scenario
        sim = Simulator()
        net = FluidNetwork(sim)
        links = [Link(f"l{i}", capacity)
                 for i, capacity in enumerate(capacities)]

        def starter(spec):
            link_ids, size, cap, weight, start = spec

            def process():
                yield sim.timeout(start)
                yield net.start_flow([links[i] for i in link_ids], size,
                                     rate_cap_bps=cap, weight=weight)

            return process()

        processes = [sim.spawn(starter(spec)) for spec in flow_specs]

        mismatches = []

        def audit():
            while True:
                reference = solve_rates_reference(net.flows)
                for flow, want in reference.items():
                    got = flow.rate_bps
                    if not math.isclose(got, want, rel_tol=self.REL_TOL,
                                        abs_tol=1e-3):
                        mismatches.append((flow.flow_id, got, want))
                yield sim.timeout(0.004)

        sim.spawn(audit())
        sim.run(until=sim.all_of(processes))
        assert not mismatches

    @settings(max_examples=30, deadline=None)
    @given(scenario=weighted_scenarios())
    def test_rates_match_oracle_across_capacity_change(self, scenario):
        capacities, flow_specs = scenario
        sim = Simulator()
        net = FluidNetwork(sim)
        links = [Link(f"l{i}", capacity)
                 for i, capacity in enumerate(capacities)]

        def starter(spec):
            link_ids, size, cap, weight, start = spec

            def process():
                yield sim.timeout(start)
                yield net.start_flow([links[i] for i in link_ids], size,
                                     rate_cap_bps=cap, weight=weight)

            return process()

        processes = [sim.spawn(starter(spec)) for spec in flow_specs]

        mismatches = []

        def shrink_then_audit():
            yield sim.timeout(0.01)
            net.set_link_capacity(links[0], links[0].capacity_bps / 3)
            while True:
                reference = solve_rates_reference(net.flows)
                for flow, want in reference.items():
                    if not math.isclose(flow.rate_bps, want,
                                        rel_tol=self.REL_TOL, abs_tol=1e-3):
                        mismatches.append((flow.flow_id, flow.rate_bps, want))
                yield sim.timeout(0.004)

        sim.spawn(shrink_then_audit())
        sim.run(until=sim.all_of(processes))
        assert not mismatches

    @settings(max_examples=40, deadline=None)
    @given(scenario=weighted_scenarios())
    def test_batch_start_matches_sequential(self, scenario):
        # start_flows must be semantically identical to a start_flow
        # loop: same-instant arrivals, rates are a pure function of the
        # final flow set, so completion times are bit-equal.
        capacities, flow_specs = scenario

        def run(batched):
            sim = Simulator()
            net = FluidNetwork(sim)
            links = [Link(f"l{i}", capacity)
                     for i, capacity in enumerate(capacities)]
            requests = [([links[i] for i in link_ids], size, cap, weight)
                        for link_ids, size, cap, weight, _ in flow_specs]
            if batched:
                done = net.start_flows(requests)
            else:
                done = [net.start_flow(l, s, rate_cap_bps=c, weight=w)
                        for l, s, c, w in requests]
            sim.run(until=sim.all_of(done))
            return [event.value for event in done], sim.now

        sequential, end_seq = run(batched=False)
        batched, end_batch = run(batched=True)
        assert sequential == batched
        assert end_seq == end_batch

    @settings(max_examples=30, deadline=None)
    @given(
        k=st.integers(2, 8),
        size=st.floats(1e4, 1e7),
        capped=st.booleans(),
    )
    def test_weighted_flow_equals_parallel_flows(self, k, size, capped):
        # A weight-k bundle of total size S drains like k parallel flows
        # of size S/k each: same aggregate rate, same completion time.
        capacity = 1e9
        cap = capacity / (2 * k) if capped else None

        sim_a = Simulator()
        net_a = FluidNetwork(sim_a)
        link_a = Link("l", capacity)
        done_a = net_a.start_flow([link_a], size, rate_cap_bps=cap,
                                  weight=k)
        sim_a.run(until=done_a)

        sim_b = Simulator()
        net_b = FluidNetwork(sim_b)
        link_b = Link("l", capacity)
        done_b = net_b.start_flows([([link_b], size / k, cap, 1)] * k)
        sim_b.run(until=sim_b.all_of(done_b))

        assert sim_a.now == pytest.approx(sim_b.now, rel=1e-9)


class TestVectorSolverDifferential:
    """The array water-fill must match both the oracle and the scalar loop.

    ``_solve_component_vector`` claims bit-identical float operations to
    the scalar dict loop; these tests force the vector path onto every
    randomly generated component (see :func:`vector_threshold`) and
    check it (a) against the from-scratch oracle at audited instants and
    (b) bit-for-bit against a scalar-path run of the same scenario.
    """

    REL_TOL = 1e-7

    @settings(max_examples=50, deadline=None)
    @given(scenario=weighted_scenarios())
    def test_forced_vector_rates_match_oracle(self, scenario):
        capacities, flow_specs = scenario
        with vector_threshold(2):
            sim = Simulator()
            net = FluidNetwork(sim)
            links = [Link(f"l{i}", capacity)
                     for i, capacity in enumerate(capacities)]

            def starter(spec):
                link_ids, size, cap, weight, start = spec

                def process():
                    yield sim.timeout(start)
                    yield net.start_flow([links[i] for i in link_ids], size,
                                         rate_cap_bps=cap, weight=weight)

                return process()

            processes = [sim.spawn(starter(spec)) for spec in flow_specs]
            mismatches = []

            def audit():
                while True:
                    reference = solve_rates_reference(net.flows)
                    for flow, want in reference.items():
                        if not math.isclose(flow.rate_bps, want,
                                            rel_tol=self.REL_TOL,
                                            abs_tol=1e-3):
                            mismatches.append(
                                (flow.flow_id, flow.rate_bps, want))
                    yield sim.timeout(0.004)

            sim.spawn(audit())
            sim.run(until=sim.all_of(processes))
        assert not mismatches

    @settings(max_examples=50, deadline=None)
    @given(scenario=weighted_scenarios())
    def test_vector_and_scalar_paths_bit_identical(self, scenario):
        capacities, flow_specs = scenario

        def run(threshold):
            with vector_threshold(threshold):
                sim = Simulator()
                net = FluidNetwork(sim)
                links = [Link(f"l{i}", capacity)
                         for i, capacity in enumerate(capacities)]

                def starter(spec):
                    link_ids, size, cap, weight, start = spec

                    def process():
                        yield sim.timeout(start)
                        done = net.start_flow(
                            [links[i] for i in link_ids], size,
                            rate_cap_bps=cap, weight=weight)
                        yield done
                        results.append(done.value)

                    return process()

                results: list[float] = []
                processes = [sim.spawn(starter(spec))
                             for spec in flow_specs]
                sim.run(until=sim.all_of(processes))
                return results, sim.now

        vector = run(threshold=2)
        scalar = run(threshold=10**9)
        assert vector == scalar  # bit-identical durations and end time


@st.composite
def bundle_scenarios(draw):
    """Symmetric fan-outs with an optional mid-flight foreign arrival."""
    members = draw(st.integers(2, 8))
    capacity = draw(st.floats(1e8, 1e10))
    size = draw(st.floats(1e4, 1e7))
    capped = draw(st.booleans())
    cap = draw(st.floats(1e7, 2e9)) if capped else None
    foreign_member = draw(st.integers(0, members - 1))
    foreign_size = draw(st.floats(1e4, 1e7))
    # As a fraction of the bundle's ideal solo duration, so the arrival
    # reliably lands mid-flight (including right at the start).
    foreign_at_frac = draw(st.floats(0.0, 0.9))
    return members, capacity, size, cap, foreign_member, foreign_size, \
        foreign_at_frac


class TestBundleBoundaries:
    """Bundled fan-outs must be timing-transparent across split/merge.

    A :class:`GroupFlow` is an exactness-preserving compression of its
    per-member flows; these properties drive it through the boundary
    cases — a foreign arrival mid-flight (split), relaunch after the
    split (merge back into a bundle), and the degenerate shapes — and
    compare against the per-member ground truth.
    """

    @settings(max_examples=40, deadline=None)
    @given(scenario=bundle_scenarios())
    def test_split_by_foreign_arrival_matches_unbundled(self, scenario):
        members, capacity, size, cap, foreign_member, foreign_size, \
            frac = scenario
        solo = size * 8.0 / capacity
        foreign_at = solo * frac

        def run(bundled):
            sim = Simulator()
            net = FluidNetwork(sim)
            links = [Link(f"l{i}", capacity) for i in range(members)]
            if bundled:
                done = [net.start_flow_group([[link] for link in links],
                                             size, rate_cap_bps=cap)]
            else:
                done = net.start_flows(
                    [([link], size, cap, 1) for link in links])

            def foreign():
                yield sim.timeout(foreign_at)
                yield net.start_flow([links[foreign_member]], foreign_size)

            intruder = sim.spawn(foreign())
            sim.run(until=sim.all_of(done + [intruder]))
            assert all(event.triggered for event in done)
            return sim.now

        assert run(bundled=True) == pytest.approx(run(bundled=False),
                                                  rel=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        members=st.integers(2, 6),
        capacity=st.floats(1e8, 1e10),
        size=st.floats(1e4, 1e6),
    )
    def test_relaunch_after_split_bundles_again(self, members, capacity,
                                                size):
        # A capacity change splits the bundle; once it drains, the same
        # fan-out must re-enter the solver as a single bundled entity
        # (the claim channel re-registers against the new capacities).
        sim = Simulator()
        net = FluidNetwork(sim)
        links = [Link(f"l{i}", capacity) for i in range(members)]
        fanout = [[link] for link in links]
        first = net.start_flow_group(fanout, size)
        assert sum(isinstance(f, GroupFlow) for f in net.flows) == 1
        net.set_link_capacity(links[0], capacity / 2)
        assert sum(isinstance(f, GroupFlow) for f in net.flows) == 0
        assert len(net.flows) == members  # split into per-member flows
        sim.run(until=first)
        second = net.start_flow_group(fanout, size)
        assert sum(isinstance(f, GroupFlow) for f in net.flows) == 0
        sim.run(until=second)  # degraded member: unbundleable, but exact
        healed = net.start_flow_group(fanout, size)
        net.set_link_capacity(links[0], capacity)  # splits again
        sim.run(until=healed)
        relaunch = net.start_flow_group(fanout, size)
        assert sum(isinstance(f, GroupFlow) for f in net.flows) == 1
        sim.run(until=relaunch)
        assert relaunch.triggered

    def test_zero_byte_group_is_pure_latency(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        links = [Link(f"l{i}", 1e9, latency_s=0.25) for i in range(4)]
        done = net.start_flow_group([[link] for link in links], 0.0)
        sim.run(until=done)
        assert sim.now == pytest.approx(0.25)
        assert not net.flows

    def test_single_member_group_is_plain_flow(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        link = Link("l", 8e9)
        done = net.start_flow_group([[link]], 1e9)
        sim.run(until=done)
        assert sim.now == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(
        members=st.integers(2, 8),
        capacity=st.floats(1e8, 1e10),
        size=st.floats(1e4, 1e7),
        capped=st.booleans(),
    )
    def test_undisturbed_bundle_matches_unbundled(self, members, capacity,
                                                  size, capped):
        cap = capacity / 3 if capped else None

        def run(bundled):
            sim = Simulator()
            net = FluidNetwork(sim)
            links = [Link(f"l{i}", capacity) for i in range(members)]
            if bundled:
                done = [net.start_flow_group([[link] for link in links],
                                             size, rate_cap_bps=cap)]
                assert sum(isinstance(f, GroupFlow)
                           for f in net.flows) == 1
            else:
                done = net.start_flows(
                    [([link], size, cap, 1) for link in links])
            sim.run(until=sim.all_of(done))
            delivered = net.bits_delivered
            return sim.now, delivered

        now_b, bits_b = run(bundled=True)
        now_u, bits_u = run(bundled=False)
        assert now_b == pytest.approx(now_u, rel=1e-9)
        assert bits_b == pytest.approx(bits_u, rel=1e-9)
