"""Property-based tests for the fluid network model.

Invariants checked over randomly generated flow/link configurations:

1. **capacity** — the instantaneous sum of flow rates on any link never
   exceeds its capacity;
2. **caps** — no flow ever exceeds its per-stream rate cap;
3. **completion** — every flow eventually completes, and its measured
   duration is at least ``bytes / min(link capacity, cap)`` (no flow can
   beat physics) and at most ``bytes / (capacity / k)`` for ``k``
   concurrent flows (max-min fairness guarantees a fair share);
4. **work conservation** — a single uncapped flow on an idle link runs
   at full capacity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FluidNetwork, Link, Simulator


@st.composite
def flow_scenarios(draw):
    num_links = draw(st.integers(1, 3))
    capacities = [draw(st.floats(1e8, 1e10)) for _ in range(num_links)]
    num_flows = draw(st.integers(1, 6))
    flows = []
    for _ in range(num_flows):
        links = sorted(draw(st.sets(st.integers(0, num_links - 1),
                                    min_size=1, max_size=num_links)))
        size = draw(st.floats(1e3, 1e7))
        capped = draw(st.booleans())
        cap = draw(st.floats(1e7, 2e9)) if capped else None
        start = draw(st.floats(0, 0.5))
        flows.append((links, size, cap, start))
    return capacities, flows


class TestNetworkInvariants:
    @settings(max_examples=60, deadline=None)
    @given(scenario=flow_scenarios())
    def test_rates_and_completion(self, scenario):
        capacities, flow_specs = scenario
        sim = Simulator()
        net = FluidNetwork(sim)
        links = [Link(f"l{i}", capacity)
                 for i, capacity in enumerate(capacities)]
        events = []

        def starter(spec):
            link_ids, size, cap, start = spec

            def process():
                yield sim.timeout(start)
                done = net.start_flow([links[i] for i in link_ids], size,
                                      rate_cap_bps=cap)
                events.append((done, size, cap, link_ids))
                yield done

            return process()

        processes = [sim.spawn(starter(spec)) for spec in flow_specs]

        # Audit rates whenever the allocation might change.
        violations = []

        def audit():
            while True:
                for link in links:
                    used = sum(f.rate_bps for f in link.flows)
                    if used > link.capacity_bps * (1 + 1e-6):
                        violations.append((link.name, used))
                for link in links:
                    for flow in link.flows:
                        if flow.rate_cap_bps is not None and \
                                flow.rate_bps > flow.rate_cap_bps * (1 + 1e-6):
                            violations.append(("cap", flow.rate_bps))
                yield sim.timeout(0.01)

        auditor = sim.spawn(audit())
        sim.run(until=sim.all_of(processes))
        assert not violations

        # Every flow completed, and durations respect physics.
        for done, size, cap, link_ids in events:
            assert done.triggered
            duration = done.value
            best_rate = min(capacities[i] for i in link_ids)
            if cap is not None:
                best_rate = min(best_rate, cap)
            floor = size * 8.0 / best_rate
            assert duration >= floor * (1 - 1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        capacity=st.floats(1e8, 1e10),
        size=st.floats(1e3, 1e8),
    )
    def test_single_flow_work_conserving(self, capacity, size):
        sim = Simulator()
        net = FluidNetwork(sim)
        link = Link("l", capacity)
        done = net.start_flow([link], size)
        sim.run(until=done)
        assert sim.now == pytest.approx(size * 8.0 / capacity, rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        k=st.integers(2, 8),
        size=st.floats(1e4, 1e7),
    )
    def test_equal_flows_fair_share(self, k, size):
        # k identical uncapped flows on one link each get capacity/k and
        # all finish simultaneously at k x the solo duration.
        capacity = 1e9
        sim = Simulator()
        net = FluidNetwork(sim)
        link = Link("l", capacity)
        flows = [net.start_flow([link], size) for _ in range(k)]
        sim.run(until=sim.all_of(flows))
        assert sim.now == pytest.approx(k * size * 8.0 / capacity,
                                        rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_bytes_conserved(self, seed):
        rng = np.random.default_rng(seed)
        sim = Simulator()
        net = FluidNetwork(sim)
        link = Link("l", 1e9)
        sizes = rng.uniform(1e3, 1e6, size=rng.integers(1, 6))
        flows = [net.start_flow([link], float(s)) for s in sizes]
        sim.run(until=sim.all_of(flows))
        assert net.bits_delivered == pytest.approx(float(sizes.sum()) * 8,
                                                   rel=1e-9)
