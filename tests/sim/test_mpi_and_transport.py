"""Tests for the MPI communicator (both backends) and transport models."""

import pytest

from repro.errors import NetworkError, SimulationError
from repro.sim import (
    RDMA,
    TCP,
    Communicator,
    FluidNetwork,
    Simulator,
    alibaba_v100_cluster,
)
from repro.sim.transport import TransportModel


class TestIdealCommunicator:
    def test_send_recv_roundtrip(self):
        sim = Simulator()
        comm = Communicator(sim, size=2)
        received = []

        def receiver():
            payload = yield comm.recv(1, src=0)
            received.append((payload, sim.now))

        comm.send(0, 1, "hello", nbytes=100)
        sim.spawn(receiver())
        sim.run()
        assert received[0][0] == "hello"
        assert received[0][1] == pytest.approx(10e-6)

    def test_fifo_per_channel(self):
        sim = Simulator()
        comm = Communicator(sim, size=2)
        got = []

        def receiver():
            for _ in range(3):
                item = yield comm.recv(1, src=0, tag=7)
                got.append(item)

        for value in (1, 2, 3):
            comm.send(0, 1, value, tag=7)
        sim.spawn(receiver())
        sim.run()
        assert got == [1, 2, 3]

    def test_tags_do_not_cross_match(self):
        sim = Simulator()
        comm = Communicator(sim, size=2)
        got = {}

        def receiver():
            got["b"] = yield comm.recv(1, src=0, tag=2)
            got["a"] = yield comm.recv(1, src=0, tag=1)

        comm.send(0, 1, "first", tag=1)
        comm.send(0, 1, "second", tag=2)
        sim.spawn(receiver())
        sim.run()
        assert got == {"a": "first", "b": "second"}

    def test_bandwidth_model(self):
        sim = Simulator()
        comm = Communicator(sim, size=2, ideal_latency_s=0.0,
                            ideal_bandwidth_bps=8e6)
        done = []

        def receiver():
            yield comm.recv(1, src=0)
            done.append(sim.now)

        comm.send(0, 1, b"payload", nbytes=1e6)  # 8e6 bits at 8 Mbps
        sim.spawn(receiver())
        sim.run()
        assert done[0] == pytest.approx(1.0)

    def test_rank_validation(self):
        sim = Simulator()
        comm = Communicator(sim, size=2)
        with pytest.raises(SimulationError):
            comm.send(0, 5, "x")
        with pytest.raises(SimulationError):
            comm.recv(5, src=0)

    def test_message_accounting(self):
        sim = Simulator()
        comm = Communicator(sim, size=2)
        comm.send(0, 1, "x", nbytes=100)
        comm.send(1, 0, "y", nbytes=50)
        assert comm.messages_sent == 2
        assert comm.bytes_sent == 150

    def test_ring_neighbors(self):
        sim = Simulator()
        comm = Communicator(sim, size=4)
        assert comm.ring_neighbors(0) == (3, 1)
        assert comm.ring_neighbors(3) == (2, 0)


class TestClusterBackedCommunicator:
    def test_intra_node_faster_than_inter_node(self):
        def transfer_time(src, dst):
            sim = Simulator()
            net = FluidNetwork(sim)
            cluster = alibaba_v100_cluster(sim, 16)
            comm = Communicator(sim, size=16, cluster=cluster, network=net)
            times = []

            def receiver():
                yield comm.recv(dst, src=src)
                times.append(sim.now)

            comm.send(src, dst, "x", nbytes=10e6)
            sim.spawn(receiver())
            sim.run()
            return times[0]

        assert transfer_time(0, 1) < transfer_time(0, 9)

    def test_inter_node_respects_stream_cap(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        cluster = alibaba_v100_cluster(sim, 16)
        comm = Communicator(sim, size=16, cluster=cluster, network=net)
        times = []

        def receiver():
            yield comm.recv(9, src=0)
            times.append(sim.now)

        comm.send(0, 9, "x", nbytes=10e6)
        sim.spawn(receiver())
        sim.run()
        # One stream capped at 7.5 Gbps (plus small latency).
        assert times[0] >= 10e6 * 8 / 7.5e9

    def test_cluster_without_network_rejected(self):
        sim = Simulator()
        cluster = alibaba_v100_cluster(sim, 8)
        with pytest.raises(SimulationError):
            Communicator(sim, size=8, cluster=cluster)

    def test_size_beyond_cluster_rejected(self):
        sim = Simulator()
        net = FluidNetwork(sim)
        cluster = alibaba_v100_cluster(sim, 8)
        with pytest.raises(SimulationError):
            Communicator(sim, size=16, cluster=cluster, network=net)


class TestTransportModels:
    def test_tcp_calibration(self):
        assert TCP.single_stream_efficiency == 0.25
        assert TCP.aggregate_efficiency == 0.96
        assert not TCP.gpu_direct
        assert TCP.stream_cap_bps(30e9) == pytest.approx(7.5e9)
        assert TCP.effective_capacity_bps(30e9) == pytest.approx(28.8e9)
        assert TCP.max_useful_streams() == 4

    def test_rdma_calibration(self):
        assert RDMA.single_stream_efficiency == pytest.approx(0.08)
        assert RDMA.gpu_direct
        # Saturating RDMA takes far more streams than TCP.
        assert RDMA.max_useful_streams() > TCP.max_useful_streams()

    def test_validation(self):
        with pytest.raises(NetworkError):
            TransportModel("bad", 0.0, 0.9, 1e-6, 1e-3)
        with pytest.raises(NetworkError):
            TransportModel("bad", 0.5, 0.4, 1e-6, 1e-3)
        with pytest.raises(NetworkError):
            TransportModel("bad", 0.5, 0.9, -1e-6, 1e-3)
